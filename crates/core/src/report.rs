//! Per-check and aggregate optimization reports.
//!
//! The reports carry everything §8 of the paper tabulates: how many checks
//! were fully redundant (split local/global), partially redundant
//! (hoisted), or kept; how many `prove` steps the solver spent per check;
//! and the analysis wall-clock time.

use abcd_ir::{CheckKind, CheckSite};
use std::time::Duration;

/// What happened to one static bounds check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckOutcome {
    /// Proven fully redundant and deleted.
    RemovedFully {
        /// Provable using only constraints of its own basic block
        /// (Figure 6's "local" category).
        local: bool,
        /// Proven only via the §7.1 value-numbering congruence hook.
        via_congruence: bool,
    },
    /// Partially redundant: compensating checks inserted, original demoted
    /// to a residual trap (§6).
    Hoisted {
        /// Number of compensating checks inserted.
        insertions: usize,
    },
    /// Not removable.
    Kept,
    /// Not analyzed (cold site, or its kind disabled).
    Skipped,
}

/// Report for one function.
#[derive(Clone, Debug, Default)]
pub struct FunctionReport {
    /// Function name.
    pub name: String,
    /// Static checks present before optimization.
    pub checks_total: usize,
    /// Outcome per analyzed check.
    pub outcomes: Vec<(CheckSite, CheckKind, CheckOutcome)>,
    /// `prove` invocations of the fully-redundant pass ("analysis steps",
    /// §8 — the paper's metric).
    pub steps: u64,
    /// Additional `prove` invocations spent by the PRE-collecting pass
    /// (§6). The paper integrates PRE into the same traversal; this
    /// implementation runs it as a second pass over failed checks, so its
    /// cost is reported separately to keep `steps` comparable.
    pub pre_steps: u64,
    /// Wall-clock time spent in analysis (not transformation).
    pub analysis_time: Duration,
    /// Compensating checks inserted by PRE.
    pub spec_checks_inserted: usize,
    /// Lower+upper pairs merged into unsigned checks (§7.2).
    pub checks_merged: usize,
    /// Cleanup (basic set) statistics.
    pub cleanup: abcd_analysis::CleanupStats,
    /// Verified interprocedural parameter facts applied to this function's
    /// graphs (0 unless `interprocedural` was enabled).
    pub param_facts_used: usize,
    /// Pipeline observability: per-pass wall time, memo effectiveness, and
    /// graph sizes (see [`crate::metrics`]).
    pub metrics: crate::metrics::FunctionMetrics,
}

impl FunctionReport {
    pub(crate) fn new(name: &str) -> Self {
        FunctionReport {
            name: name.to_string(),
            ..FunctionReport::default()
        }
    }

    pub(crate) fn record(&mut self, site: CheckSite, kind: CheckKind, outcome: CheckOutcome) {
        self.outcomes.push((site, kind, outcome));
    }

    /// Checks analyzed (not skipped).
    pub fn checks_analyzed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| !matches!(o, CheckOutcome::Skipped))
            .count()
    }

    /// Checks removed as fully redundant.
    pub fn removed_fully(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::RemovedFully { .. }))
            .count()
    }

    /// Fully redundant checks provable within their own block.
    pub fn removed_locally(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::RemovedFully { local: true, .. }))
            .count()
    }

    /// Checks hoisted by PRE.
    pub fn hoisted(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::Hoisted { .. }))
            .count()
    }

    /// Average `prove` steps per analyzed check.
    pub fn steps_per_check(&self) -> f64 {
        let n = self.checks_analyzed();
        if n == 0 {
            0.0
        } else {
            self.steps as f64 / n as f64
        }
    }
}

/// Report for a whole module.
#[derive(Clone, Debug, Default)]
pub struct ModuleReport {
    /// One report per function, in module order.
    pub functions: Vec<FunctionReport>,
}

impl ModuleReport {
    /// Static checks present before optimization.
    pub fn checks_total(&self) -> usize {
        self.functions.iter().map(|f| f.checks_total).sum()
    }

    /// Checks analyzed across all functions.
    pub fn checks_analyzed(&self) -> usize {
        self.functions.iter().map(|f| f.checks_analyzed()).sum()
    }

    /// Checks removed as fully redundant.
    pub fn checks_removed_fully(&self) -> usize {
        self.functions.iter().map(|f| f.removed_fully()).sum()
    }

    /// Fully redundant checks provable within one block.
    pub fn checks_removed_locally(&self) -> usize {
        self.functions.iter().map(|f| f.removed_locally()).sum()
    }

    /// Checks hoisted by PRE.
    pub fn checks_hoisted(&self) -> usize {
        self.functions.iter().map(|f| f.hoisted()).sum()
    }

    /// Total `prove` steps (fully-redundant pass).
    pub fn steps(&self) -> u64 {
        self.functions.iter().map(|f| f.steps).sum()
    }

    /// Total PRE-pass `prove` steps.
    pub fn pre_steps(&self) -> u64 {
        self.functions.iter().map(|f| f.pre_steps).sum()
    }

    /// Average steps per analyzed check.
    pub fn steps_per_check(&self) -> f64 {
        let n = self.checks_analyzed();
        if n == 0 {
            0.0
        } else {
            self.steps() as f64 / n as f64
        }
    }

    /// Total analysis time.
    pub fn analysis_time(&self) -> Duration {
        self.functions.iter().map(|f| f.analysis_time).sum()
    }
}
