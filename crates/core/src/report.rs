//! Per-check and aggregate optimization reports.
//!
//! The reports carry everything §8 of the paper tabulates: how many checks
//! were fully redundant (split local/global), partially redundant
//! (hoisted), or kept; how many `prove` steps the solver spent per check;
//! and the analysis wall-clock time.

use abcd_ir::{Block, CheckKind, CheckSite, InstId, Symbol, Value};
use std::fmt;
use std::time::Duration;

/// What happened to one static bounds check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckOutcome {
    /// Proven fully redundant and deleted.
    RemovedFully {
        /// Provable using only constraints of its own basic block
        /// (Figure 6's "local" category).
        local: bool,
        /// Proven only via the §7.1 value-numbering congruence hook.
        via_congruence: bool,
    },
    /// Partially redundant: compensating checks inserted, original demoted
    /// to a residual trap (§6).
    Hoisted {
        /// Number of compensating checks inserted.
        insertions: usize,
    },
    /// Not removable.
    Kept,
    /// Not analyzed (cold site, or its kind disabled).
    Skipped,
    /// Removed by the optimizer but reinstated because translation
    /// validation could not independently re-justify the elimination.
    Reinstated,
}

/// One robustness event recorded while the fail-open pipeline degraded a
/// failure into a conservative outcome instead of crashing or miscompiling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Incident {
    /// A prover hit its fuel budget; the check was kept conservatively.
    BudgetExhausted {
        /// Function the query ran in.
        function: Symbol,
        /// Site of the check that stayed in place.
        site: CheckSite,
        /// Which bound was being proven.
        kind: CheckKind,
        /// Solver steps spent when the budget tripped (0 when the
        /// per-function budget was already gone before the query started).
        fuel: u64,
    },
    /// A pipeline pass panicked; the function shipped unoptimized.
    PassPanic {
        /// Function whose pipeline unwound.
        function: Symbol,
        /// The pass that was running when the panic unwound.
        pass: String,
        /// Panic payload (message), when it was a string.
        payload: String,
    },
    /// The IR verifier rejected a pass's output; the pre-pass function was
    /// shipped instead.
    VerifyFailed {
        /// Function the verifier rejected.
        function: Symbol,
        /// The pass whose output failed verification.
        pass: String,
        /// The verifier's error message.
        error: String,
    },
    /// Translation validation could not re-justify an eliminated check;
    /// the check was reinstated.
    ValidationReinstated {
        /// Function the check belongs to.
        function: Symbol,
        /// Site of the reinstated check.
        site: CheckSite,
        /// Which bound had been eliminated.
        kind: CheckKind,
    },
    /// A persisted cache entry failed re-verification on load; it was
    /// quarantined and the function recompiled cold. The output is fully
    /// optimized — this surfaces an operational problem (disk rot, a
    /// writer crash mid-entry), never a correctness one.
    CacheCorrupt {
        /// Function whose entry was rejected.
        function: Symbol,
        /// Why re-verification rejected the entry.
        detail: String,
    },
    /// Path-weight arithmetic overflowed `i64` during a prove; the query
    /// answered `False` conservatively and the check was kept. Like a
    /// budget stop, this is a precision loss, never a soundness one.
    SolverOverflow {
        /// Function the query ran in.
        function: Symbol,
        /// Site of the check that stayed in place.
        site: CheckSite,
        /// Which bound was being proven.
        kind: CheckKind,
    },
    /// A service request blew its deadline; the module was served
    /// unoptimized (every check kept). Like a budget stop this trades
    /// precision for liveness, never soundness — the reply is still a
    /// correct program, just an unoptimized one.
    DeadlineExceeded {
        /// Function the report entry belongs to (`*` when the whole
        /// module was cut off before per-function attribution existed).
        function: Symbol,
        /// The deadline that was in force, in milliseconds.
        deadline_ms: u64,
        /// Elapsed time when the deadline tripped, in milliseconds
        /// (0 under `--deterministic-metrics`).
        elapsed_ms: u64,
    },
}

impl Incident {
    /// Machine-readable incident kind, used by the metrics schema.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Incident::BudgetExhausted { .. } => "budget_exhausted",
            Incident::PassPanic { .. } => "pass_panic",
            Incident::VerifyFailed { .. } => "verify_failed",
            Incident::ValidationReinstated { .. } => "validation_reinstated",
            Incident::CacheCorrupt { .. } => "cache_corrupt",
            Incident::SolverOverflow { .. } => "solver_overflow",
            Incident::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }

    /// Does this incident indicate the optimizer itself misbehaved (as
    /// opposed to merely running out of budget)? `mjc` maps these to a
    /// distinct exit status. Cache corruption is not degradation either:
    /// the function was recompiled cold and is fully optimized.
    pub fn is_degraded(&self) -> bool {
        !matches!(
            self,
            Incident::BudgetExhausted { .. }
                | Incident::CacheCorrupt { .. }
                | Incident::SolverOverflow { .. }
                | Incident::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Incident::BudgetExhausted {
                function,
                site,
                kind,
                fuel,
            } => write!(
                f,
                "budget exhausted in `{function}` at {site:?} ({kind:?}) after {fuel} steps; check kept"
            ),
            Incident::PassPanic {
                function,
                pass,
                payload,
            } => write!(
                f,
                "pass `{pass}` panicked in `{function}` ({payload}); function shipped unoptimized"
            ),
            Incident::VerifyFailed {
                function,
                pass,
                error,
            } => write!(
                f,
                "IR verification failed after pass `{pass}` in `{function}` ({error}); pre-pass function shipped"
            ),
            Incident::ValidationReinstated {
                function,
                site,
                kind,
            } => write!(
                f,
                "translation validation reinstated check {site:?} ({kind:?}) in `{function}`"
            ),
            Incident::CacheCorrupt { function, detail } => write!(
                f,
                "cache entry for `{function}` failed re-verification ({detail}); \
                 quarantined and recompiled cold"
            ),
            Incident::SolverOverflow {
                function,
                site,
                kind,
            } => write!(
                f,
                "path-weight overflow in `{function}` at {site:?} ({kind:?}); check kept"
            ),
            Incident::DeadlineExceeded {
                function,
                deadline_ms,
                elapsed_ms,
            } => write!(
                f,
                "deadline of {deadline_ms} ms exceeded for `{function}` after {elapsed_ms} ms; \
                 module served unoptimized, all checks kept"
            ),
        }
    }
}

/// Everything validation needs to independently re-justify (or reinstate)
/// one eliminated check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EliminatedCheck {
    /// Block the check lived in.
    pub block: Block,
    /// Check site (still present on the surviving π node).
    pub site: CheckSite,
    /// Which bound was eliminated.
    pub kind: CheckKind,
    /// Array operand of the original check.
    pub array: Value,
    /// Index operand of the original check.
    pub index: Value,
}

/// A PRE-hoisted check: the original was demoted to a residual trap and
/// compensating checks were inserted at `points`. Validation re-derives the
/// insertion points on a clean graph and un-demotes on mismatch.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HoistedCheck {
    /// Block holding the demoted residual trap.
    pub block: Block,
    /// The demoted `TrapIfFlagged` instruction.
    pub inst: InstId,
    /// Check site.
    pub site: CheckSite,
    /// Which bound was hoisted.
    pub kind: CheckKind,
    /// Array operand of the original check.
    pub array: Value,
    /// Index operand of the original check.
    pub index: Value,
    /// The compensating-check insertion points PRE applied.
    pub points: Vec<crate::solver::InsertionPoint>,
}

/// Report for one function.
#[derive(Clone, Debug, Default)]
pub struct FunctionReport {
    /// Function name (interned; resolve with [`Symbol::as_str`]).
    pub name: Symbol,
    /// Static checks present before optimization.
    pub checks_total: usize,
    /// Outcome per analyzed check.
    pub outcomes: Vec<(CheckSite, CheckKind, CheckOutcome)>,
    /// `prove` invocations of the fully-redundant pass ("analysis steps",
    /// §8 — the paper's metric).
    pub steps: u64,
    /// Additional `prove` invocations spent by the PRE-collecting pass
    /// (§6). The paper integrates PRE into the same traversal; this
    /// implementation runs it as a second pass over failed checks, so its
    /// cost is reported separately to keep `steps` comparable.
    pub pre_steps: u64,
    /// Wall-clock time spent in analysis (not transformation).
    pub analysis_time: Duration,
    /// Compensating checks inserted by PRE.
    pub spec_checks_inserted: usize,
    /// Lower+upper pairs merged into unsigned checks (§7.2).
    pub checks_merged: usize,
    /// Cleanup (basic set) statistics.
    pub cleanup: abcd_analysis::CleanupStats,
    /// Verified interprocedural parameter facts applied to this function's
    /// graphs (0 unless `interprocedural` was enabled).
    pub param_facts_used: usize,
    /// Pipeline observability: per-pass wall time, memo effectiveness, and
    /// graph sizes (see [`crate::metrics`]).
    pub metrics: crate::metrics::FunctionMetrics,
    /// Robustness events recorded for this function (fail-open layer).
    pub incidents: Vec<Incident>,
    /// Checks fully eliminated, with enough context for validation to
    /// re-justify or reinstate them.
    pub eliminated: Vec<EliminatedCheck>,
    /// Checks hoisted by PRE, for validation of the insertion points.
    pub hoisted_checks: Vec<HoistedCheck>,
    /// Eliminations independently re-proven by translation validation.
    pub checks_validated: usize,
    /// Eliminations validation failed to re-prove (and reinstated).
    pub checks_reinstated: usize,
    /// Solver fuel actually spent (fully-redundant + PRE passes).
    pub fuel_spent: u64,
    /// Per-function fuel budget in force, if any.
    pub fuel_limit: Option<u64>,
    /// The result was replayed from the analysis cache; `steps`,
    /// `pre_steps`, and the per-check outcomes reproduce the original
    /// cold run's verdicts, but no solver work happened in this run.
    pub from_cache: bool,
    /// Recorded span trace, present only when the driver ran with tracing
    /// enabled ([`crate::Optimizer::with_trace`]). Boxed so the disabled
    /// path costs one pointer; rides the driver's deterministic
    /// function-order merge like every other report field.
    pub trace: Option<Box<crate::trace::FunctionTrace>>,
}

impl FunctionReport {
    pub(crate) fn new(name: impl Into<Symbol>) -> Self {
        FunctionReport {
            name: name.into(),
            ..FunctionReport::default()
        }
    }

    pub(crate) fn record(&mut self, site: CheckSite, kind: CheckKind, outcome: CheckOutcome) {
        self.outcomes.push((site, kind, outcome));
    }

    /// Checks analyzed (not skipped).
    pub fn checks_analyzed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| !matches!(o, CheckOutcome::Skipped))
            .count()
    }

    /// Checks removed as fully redundant.
    pub fn removed_fully(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::RemovedFully { .. }))
            .count()
    }

    /// Fully redundant checks provable within their own block.
    pub fn removed_locally(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::RemovedFully { local: true, .. }))
            .count()
    }

    /// Checks hoisted by PRE.
    pub fn hoisted(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::Hoisted { .. }))
            .count()
    }

    /// Average `prove` steps per analyzed check.
    pub fn steps_per_check(&self) -> f64 {
        let n = self.checks_analyzed();
        if n == 0 {
            0.0
        } else {
            self.steps as f64 / n as f64
        }
    }

    /// Checks reinstated by translation validation.
    pub fn reinstated(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::Reinstated))
            .count()
    }

    /// Flips the recorded outcome of `(site, kind)` to `Reinstated`.
    /// Used by validation after putting the check back.
    pub(crate) fn mark_reinstated(&mut self, site: CheckSite, kind: CheckKind) {
        for (s, k, o) in &mut self.outcomes {
            if *s == site && *k == kind {
                *o = CheckOutcome::Reinstated;
            }
        }
    }
}

/// Report for a whole module.
#[derive(Clone, Debug, Default)]
pub struct ModuleReport {
    /// One report per function, in module order.
    pub functions: Vec<FunctionReport>,
}

impl ModuleReport {
    /// Static checks present before optimization.
    pub fn checks_total(&self) -> usize {
        self.functions.iter().map(|f| f.checks_total).sum()
    }

    /// Checks analyzed across all functions.
    pub fn checks_analyzed(&self) -> usize {
        self.functions.iter().map(|f| f.checks_analyzed()).sum()
    }

    /// Checks removed as fully redundant.
    pub fn checks_removed_fully(&self) -> usize {
        self.functions.iter().map(|f| f.removed_fully()).sum()
    }

    /// Fully redundant checks provable within one block.
    pub fn checks_removed_locally(&self) -> usize {
        self.functions.iter().map(|f| f.removed_locally()).sum()
    }

    /// Checks hoisted by PRE.
    pub fn checks_hoisted(&self) -> usize {
        self.functions.iter().map(|f| f.hoisted()).sum()
    }

    /// Total `prove` steps (fully-redundant pass).
    pub fn steps(&self) -> u64 {
        self.functions.iter().map(|f| f.steps).sum()
    }

    /// Total PRE-pass `prove` steps.
    pub fn pre_steps(&self) -> u64 {
        self.functions.iter().map(|f| f.pre_steps).sum()
    }

    /// Average steps per analyzed check.
    pub fn steps_per_check(&self) -> f64 {
        let n = self.checks_analyzed();
        if n == 0 {
            0.0
        } else {
            self.steps() as f64 / n as f64
        }
    }

    /// Total analysis time.
    pub fn analysis_time(&self) -> Duration {
        self.functions.iter().map(|f| f.analysis_time).sum()
    }

    /// All incidents across the module, tagged with nothing extra — each
    /// incident already names its function.
    pub fn incidents(&self) -> impl Iterator<Item = &Incident> {
        self.functions.iter().flat_map(|f| f.incidents.iter())
    }

    /// Total incident count.
    pub fn incident_count(&self) -> usize {
        self.functions.iter().map(|f| f.incidents.len()).sum()
    }

    /// Incidents that indicate degraded output (panic, verifier rejection,
    /// validation reinstatement) rather than a budget stop.
    pub fn degraded_incident_count(&self) -> usize {
        self.incidents().filter(|i| i.is_degraded()).count()
    }

    /// Eliminations re-proven by translation validation.
    pub fn checks_validated(&self) -> usize {
        self.functions.iter().map(|f| f.checks_validated).sum()
    }

    /// Eliminations reinstated by translation validation.
    pub fn checks_reinstated(&self) -> usize {
        self.functions.iter().map(|f| f.checks_reinstated).sum()
    }

    /// Solver fuel spent module-wide.
    pub fn fuel_spent(&self) -> u64 {
        self.functions.iter().map(|f| f.fuel_spent).sum()
    }

    /// Functions whose results were replayed from the analysis cache.
    pub fn functions_from_cache(&self) -> usize {
        self.functions.iter().filter(|f| f.from_cache).count()
    }

    /// Builds the fail-open report for a module served *unoptimized*
    /// because its request blew a deadline: one entry per function with
    /// every check counted but none analyzed, and a single non-degraded
    /// [`Incident::DeadlineExceeded`] attached to the first entry (or to a
    /// synthetic `*` entry when the module has no functions). Used by
    /// `abcdd` so a deadline reply still carries an honest report.
    pub fn deadline_fail_open(
        module: &abcd_ir::Module,
        deadline_ms: u64,
        elapsed_ms: u64,
    ) -> ModuleReport {
        let mut report = ModuleReport::default();
        for (_, f) in module.functions() {
            let mut fr = FunctionReport::new(f.name());
            fr.checks_total = f.check_site_count();
            report.functions.push(fr);
        }
        let incident = |function: Symbol| Incident::DeadlineExceeded {
            function,
            deadline_ms,
            elapsed_ms,
        };
        match report.functions.first_mut() {
            Some(first) => {
                let name = first.name;
                first.incidents.push(incident(name));
            }
            None => {
                let mut fr = FunctionReport::new("*");
                fr.incidents.push(incident(Symbol::intern("*")));
                report.functions.push(fr);
            }
        }
        report
    }
}
