//! `abcdd` — the persistent ABCD optimization daemon.
//!
//! ```text
//! abcdd --socket /tmp/abcdd.sock [--listen tcp:127.0.0.1:7433]...
//!       [--shards N] [--workers N] [--queue N] [--jobs N]
//!       [--cache-bytes N] [--cache-dir DIR] [--no-cache]
//!       [--request-timeout MS] [--io-timeout MS] [--stuck-after MS]
//!       [--chaos PLAN]
//! ```
//!
//! Runs in the foreground until a `shutdown` request arrives (e.g. from
//! `mjc client --socket … shutdown`), then drains admitted requests and
//! exits 0. Exit 1 means bad usage or a bind failure.

use abcd::{AnalysisCache, ChaosPlan};
use abcd_server::{ListenAddr, ServerConfig, ServerHandle};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const HELP: &str = "\
abcdd — persistent ABCD optimization service

USAGE:
    abcdd [--socket PATH | --listen ADDR]... [options]

OPTIONS:
    --socket PATH      Unix-domain socket to listen on (same as
                       `--listen uds:PATH`)
    --listen ADDR      endpoint to listen on: `uds:/path/to.sock` or
                       `tcp:host:port` (`tcp:127.0.0.1:0` picks a free
                       port). Repeatable; all endpoints are served
                       concurrently by the same shard set.
    --shards N         independent run queues with work stealing between
                       them (default 1); admission places each connection
                       on the least-loaded shard
    --workers N        request handlers PER SHARD (default: all host CPUs;
                       requests beyond the available parallelism are clamped)
    --queue N          bounded admission queue per shard; when every shard
                       is full the connection gets a queue-position reply
                       `{\"queued\":P,\"retry_after_ms\":...}` (default 8)
    --jobs N           optimizer threads per request (default: all host
                       CPUs; clamped to the available parallelism)
    --cache-bytes N    in-memory analysis-cache budget (default 64 MiB)
    --cache-dir DIR    also persist cache entries to DIR (content-addressed,
                       re-verified on load; corruption falls back to cold)
    --no-cache         disable the analysis cache entirely
    --request-timeout MS
                       default per-request deadline for requests that carry
                       no deadline_ms; tripping it FAILS OPEN (the module is
                       served unoptimized, every check kept)
    --io-timeout MS    socket read/write timeout per frame (default 30000;
                       0 disables)
    --stuck-after MS   supervision threshold: an in-flight request older
                       than this gets its connection kicked; 4x older gets
                       its worker detached and replaced (default 30000)
    --chaos PLAN       seeded fault injection, e.g.
                       `seed:42,worker_panic:20,disk_corrupt:10` (permille
                       rates; sites: worker_panic, disk_short, disk_corrupt,
                       disk_full, frame_truncate, frame_slow, disconnect)
    --help             this text

Protocol, deadline and retry contract: see DESIGN.md §5e/§5h. Shut down
with `mjc client --socket PATH shutdown`; exit code 0 after a graceful
drain — even under chaos.
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("abcdd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let count_of = |flag: &str, default: usize| -> Result<usize, String> {
        match value_of(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("`{flag}` needs a count")),
        }
    };
    // Reject unknown flags up front (structured error, not silent ignore).
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" | "--listen" | "--shards" | "--workers" | "--queue" | "--jobs"
            | "--cache-bytes" | "--cache-dir" | "--request-timeout" | "--io-timeout"
            | "--stuck-after" | "--chaos" => i += 1,
            "--no-cache" => {}
            other => return Err(format!("unknown flag `{other}`\n{HELP}")),
        }
        i += 1;
    }

    // Gather every endpoint: each `--socket PATH` (UDS, the historical
    // spelling) and each `--listen uds:…|tcp:…`, in argv order.
    let mut listen: Vec<ListenAddr> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                let path = args
                    .get(i + 1)
                    .ok_or(format!("`--socket` needs a path\n{HELP}"))?;
                listen.push(ListenAddr::Uds(path.into()));
                i += 1;
            }
            "--listen" => {
                let spec = args
                    .get(i + 1)
                    .ok_or(format!("`--listen` needs an address\n{HELP}"))?;
                listen.push(ListenAddr::parse(spec).map_err(|e| format!("--listen: {e}"))?);
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    if listen.is_empty() {
        return Err(format!(
            "at least one `--socket PATH` or `--listen ADDR` is required\n{HELP}"
        ));
    }
    let cache_bytes = count_of("--cache-bytes", abcd::cache::DEFAULT_CACHE_BYTES)?;
    let shards = count_of("--shards", 1)?.max(1);
    let cache = if args.iter().any(|a| a == "--no-cache") {
        None
    } else {
        // Stripe the shared cache to match the shard count so parallel
        // shards don't serialize on one cache lock.
        Some(Arc::new(
            match value_of("--cache-dir") {
                None => AnalysisCache::in_memory(cache_bytes),
                Some(dir) => AnalysisCache::with_dir(std::path::Path::new(dir), cache_bytes)
                    .map_err(|e| format!("--cache-dir {dir}: {e}"))?,
            }
            .with_stripes(shards),
        ))
    };
    let ms_of = |flag: &str| -> Result<Option<u64>, String> {
        match value_of(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("`{flag}` needs milliseconds")),
        }
    };
    let duration_of = |flag: &str, default_ms: u64| -> Result<Option<Duration>, String> {
        Ok(match ms_of(flag)?.unwrap_or(default_ms) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        })
    };
    let chaos = match value_of("--chaos") {
        None => None,
        Some(spec) => Some(Arc::new(
            ChaosPlan::parse(spec).map_err(|e| format!("--chaos: {e}"))?,
        )),
    };
    let config = ServerConfig {
        listen,
        shards,
        // Both knobs are clamped to the host's available parallelism:
        // oversubscribing a small host ran the benchsuite ~40% slower (see
        // `pipeline/abcd_suite_threads/*` in `BENCH_pipeline.json`).
        workers: abcd::clamp_jobs(count_of("--workers", 0)?),
        queue: count_of("--queue", 8)?,
        jobs: abcd::clamp_jobs(count_of("--jobs", 0)?),
        cache,
        request_timeout: ms_of("--request-timeout")?.map(Duration::from_millis),
        io_timeout: duration_of("--io-timeout", 30_000)?,
        stuck_after: duration_of("--stuck-after", 30_000)?.unwrap_or(Duration::from_secs(86_400)),
        chaos,
    };
    let handle: ServerHandle = abcd_server::start(config).map_err(|e| format!("bind: {e}"))?;
    for endpoint in handle.endpoints() {
        eprintln!("abcdd: listening on {}", endpoint.describe());
    }
    handle.join();
    eprintln!("abcdd: drained, bye");
    Ok(ExitCode::SUCCESS)
}
