//! `abcdd` — the persistent ABCD optimization daemon.
//!
//! ```text
//! abcdd --socket /tmp/abcdd.sock [--workers N] [--queue N] [--jobs N]
//!       [--cache-bytes N] [--cache-dir DIR] [--no-cache]
//! ```
//!
//! Runs in the foreground until a `shutdown` request arrives (e.g. from
//! `mjc client --socket … shutdown`), then drains admitted requests and
//! exits 0. Exit 1 means bad usage or a bind failure.

use abcd::AnalysisCache;
use abcd_server::{ServerConfig, ServerHandle};
use std::process::ExitCode;
use std::sync::Arc;

const HELP: &str = "\
abcdd — persistent ABCD optimization service

USAGE:
    abcdd --socket PATH [options]

OPTIONS:
    --socket PATH      Unix-domain socket to listen on (required)
    --workers N        concurrent request handlers (default 2)
    --queue N          bounded admission queue; overflow gets a `busy`
                       reply with a retry hint (default 8)
    --jobs N           optimizer threads per request (default 0 = sequential)
    --cache-bytes N    in-memory analysis-cache budget (default 64 MiB)
    --cache-dir DIR    also persist cache entries to DIR (content-addressed,
                       re-verified on load; corruption falls back to cold)
    --no-cache         disable the analysis cache entirely
    --help             this text

Protocol and retry contract: see DESIGN.md §5e. Shut down with
`mjc client --socket PATH shutdown`; exit code 0 after a graceful drain.
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("abcdd: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let count_of = |flag: &str, default: usize| -> Result<usize, String> {
        match value_of(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("`{flag}` needs a count")),
        }
    };
    // Reject unknown flags up front (structured error, not silent ignore).
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" | "--workers" | "--queue" | "--jobs" | "--cache-bytes" | "--cache-dir" => {
                i += 1
            }
            "--no-cache" => {}
            other => return Err(format!("unknown flag `{other}`\n{HELP}")),
        }
        i += 1;
    }

    let socket = value_of("--socket").ok_or(format!("`--socket PATH` is required\n{HELP}"))?;
    let cache_bytes = count_of("--cache-bytes", abcd::cache::DEFAULT_CACHE_BYTES)?;
    let cache = if args.iter().any(|a| a == "--no-cache") {
        None
    } else {
        Some(Arc::new(match value_of("--cache-dir") {
            None => AnalysisCache::in_memory(cache_bytes),
            Some(dir) => AnalysisCache::with_dir(std::path::Path::new(dir), cache_bytes)
                .map_err(|e| format!("--cache-dir {dir}: {e}"))?,
        }))
    };
    let config = ServerConfig {
        socket: socket.into(),
        workers: count_of("--workers", 2)?,
        queue: count_of("--queue", 8)?,
        jobs: count_of("--jobs", 0)?,
        cache,
    };
    let handle: ServerHandle =
        abcd_server::start(config).map_err(|e| format!("bind {socket}: {e}"))?;
    eprintln!("abcdd: listening on {socket}");
    handle.join();
    eprintln!("abcdd: drained, bye");
    Ok(ExitCode::SUCCESS)
}
