//! The `abcdd` daemon: a sharded, bounded-admission optimization service
//! over Unix-domain sockets and TCP, with work-stealing between shards.
//!
//! # Architecture
//!
//! ```text
//!              accept()                admit (least-loaded)
//!   clients ─────────────► acceptor ───────────────────────► shard 0 ─ worker × W
//!        (UDS and/or TCP,     │  all shards full?            shard 1 ─ worker × W
//!         one thread each)    └─► queue-position reply          ⋮    (steal ⇄)
//!                                 and close                   shard N-1
//!                                                                │
//!                                          supervisor ──────────┘
//!                                          (respawn / kick / detach)
//! ```
//!
//! Each listener gets an acceptor thread that *only* accepts: admission is
//! a lock-light placement onto the least-loaded shard's bounded queue, so
//! overload is detected without reading a byte of the request. When every
//! shard is full the connection is answered with a **queue-position
//! reply** (`{"queued":P,"retry_after_ms":...}`, still `busy:true` for v1
//! clients) instead of being silently shed. Workers own the whole request
//! lifecycle (read frame → parse → optimize → write frame(s)); an idle
//! worker **steals** the oldest job from the deepest sibling shard, so one
//! hot shard cannot starve requests while others idle. All shards share
//! one [`AnalysisCache`] (lock-striped per shard), so a function optimized
//! for any client is a cache hit for every later client on any transport.
//!
//! # Protocol v2
//!
//! A request frame holding a JSON array is a pipelined batch: the worker
//! serves each element in order, streaming one reply frame per element
//! over the same connection, with per-element deadlines measured from the
//! connection's admission (see `proto`).
//!
//! # Supervision
//!
//! A supervisor thread watches every worker. A worker that *panicked* is
//! reaped and respawned, and its in-flight connection — registered in a
//! per-worker slot before any fallible work — receives a structured error
//! instead of a silent hangup (`worker_restarts`). A worker *stuck* past
//! [`ServerConfig::stuck_after`] first has its connection shut down, which
//! unwedges anything blocked on socket IO (`worker_kicks`); if it stays
//! wedged well past that — stuck in compute, which no signal can
//! interrupt — the thread is detached and a replacement takes its slot, so
//! capacity recovers even from a runaway request.
//!
//! # Deadlines
//!
//! Requests may carry `deadline_ms`, or inherit
//! [`ServerConfig::request_timeout`]. A tripped deadline **fails open**:
//! the reply is the compiled but unoptimized module — every bounds check
//! kept, correctness untouched — with a non-degraded `deadline_exceeded`
//! incident. In a batch the deadline trips per element; later elements
//! are served normally. Socket reads and writes are additionally bounded
//! by [`ServerConfig::io_timeout`], so a stalled peer cannot pin a worker.
//!
//! # Fault injection
//!
//! An armed [`ChaosPlan`] injects failures at the service layer: worker
//! panics, truncated and slow-trickled response frames, and mid-request
//! disconnects (disk faults live in the cache layer). Decisions are
//! deterministic per `(seed, site, sequence)`, so a chaos soak is
//! replayable. Production servers run with no plan; the code paths chaos
//! exercises are the same ones real faults take.
//!
//! # Shutdown
//!
//! A `shutdown` request sets the stop flag, then self-connects to every
//! listener to wake the acceptors out of their blocking `accept`. The
//! acceptors exit; workers drain every request already admitted (the
//! graceful part), then — once the queues are empty and no acceptor can
//! admit more — exit. The supervisor reaps them and exits last;
//! [`ServerHandle::join`] observes all of it.

use crate::proto::{
    error_response, ok_response, parse_request, queued_response, read_frame, write_frame,
    OptimizeRequest, Request,
};
use crate::shard::{Dequeue, Job, ShardSet};
use crate::transport::{self, Conn, ListenAddr, Listener};
use abcd::{
    module_metrics_json, AnalysisCache, ChaosPlan, ChaosSite, ModuleReport, Optimizer, RunInfo,
    CHAOS_SITES,
};
use abcd_frontend::compile;
use abcd_ir::Module;
use std::io::Write as _;
use std::net::Shutdown;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Floor of the adaptive busy hint (an empty queue still advises a pause).
const BUSY_HINT_BASE_MS: u64 = 5;
/// Ceiling of the adaptive busy hint.
const BUSY_HINT_CAP_MS: u64 = 500;

/// The advisory retry delay for a shed connection, scaled by the backlog
/// observed at shed time: a deeper backlog advises a longer pause, so a
/// thundering herd spreads out instead of re-colliding.
fn busy_hint_ms(backlog: usize) -> u64 {
    (BUSY_HINT_BASE_MS * (backlog as u64 + 1)).clamp(BUSY_HINT_BASE_MS, BUSY_HINT_CAP_MS)
}

/// Configuration for [`start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Addresses to listen on — any mix of UDS paths and TCP binds, all
    /// served concurrently by the same shard set.
    pub listen: Vec<ListenAddr>,
    /// Number of shards; each owns a worker pool and a bounded run queue.
    pub shards: usize,
    /// Worker threads *per shard* handling requests concurrently.
    pub workers: usize,
    /// Bounded admission-queue depth *per shard*; `0` means a worker of
    /// that shard must be idle at connect time (rendezvous), anything
    /// else queues that many requests.
    pub queue: usize,
    /// `Optimizer::with_threads` parallelism *within* one request.
    pub jobs: usize,
    /// Shared analysis cache, if caching is enabled.
    pub cache: Option<Arc<AnalysisCache>>,
    /// Default deadline for requests that carry no `deadline_ms`; `None`
    /// means requests without their own deadline run unbounded.
    pub request_timeout: Option<Duration>,
    /// Socket read/write timeout for request and response frames; `None`
    /// disables it (a stalled peer then relies on supervision kicks).
    pub io_timeout: Option<Duration>,
    /// Supervision threshold: an in-flight request older than this gets
    /// its connection kicked; one older than four times this gets its
    /// worker detached and replaced.
    pub stuck_after: Duration,
    /// Fault-injection schedule; `None` (production) injects nothing.
    pub chaos: Option<Arc<ChaosPlan>>,
}

impl ServerConfig {
    /// A single-shard, single-worker server on UDS `socket` with library
    /// defaults.
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            listen: vec![ListenAddr::Uds(socket.into())],
            shards: 1,
            workers: 1,
            queue: 8,
            jobs: 0,
            cache: None,
            request_timeout: None,
            io_timeout: Some(Duration::from_secs(30)),
            stuck_after: Duration::from_secs(30),
            chaos: None,
        }
    }
}

/// Counters shared by the acceptors and workers, reported by `stats` and
/// exposed by `metrics`.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    deadline_exceeded: AtomicU64,
    worker_restarts: AtomicU64,
    worker_kicks: AtomicU64,
    /// Request latency (enqueue → response written), microseconds.
    latency: Hist,
    /// Total queued backlog observed at each dequeue.
    queue_hist: Hist,
}

/// A lock-free log2-bucketed histogram. Bucket 0 counts zero samples;
/// bucket `i ≥ 1` counts samples in `[2^(i-1), 2^i − 1]`, so the
/// Prometheus `le` bound of bucket `i` is `2^i − 1`; the last bucket
/// additionally absorbs everything larger.
#[derive(Debug, Default)]
struct Hist {
    buckets: [AtomicU64; 32],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Hist {
    fn observe(&self, v: u64) {
        let b = (64 - v.leading_zeros()).min(31) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends the Prometheus exposition lines for this histogram.
    /// `deterministic` renders the full bucket ladder with every sample
    /// zeroed, so the *format* is byte-stable across runs.
    fn exposition(&self, name: &str, out: &mut String, deterministic: bool) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            if !deterministic {
                cumulative += bucket.load(Ordering::Relaxed);
            }
            let le = if i == 31 {
                "+Inf".to_string()
            } else {
                ((1u64 << i) - 1).to_string()
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let (sum, count) = if deterministic {
            (0, 0)
        } else {
            (
                self.sum.load(Ordering::Relaxed),
                self.count.load(Ordering::Relaxed),
            )
        };
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {count}");
    }
}

struct Shared {
    config: ServerConfig,
    stop: AtomicBool,
    counters: Counters,
    shards: ShardSet,
    /// The addresses actually bound (TCP ephemeral ports resolved) —
    /// what shutdown wakes and [`ServerHandle::endpoints`] reports.
    resolved: Vec<ListenAddr>,
    /// Acceptor threads still running; drain completes only at zero, so
    /// a connection admitted concurrently with shutdown is never orphaned.
    acceptors_live: AtomicUsize,
    /// Pooled analysis scratch, one pool per shard: arenas warmed by one
    /// request serve the next on the same shard, so steady-state
    /// re-optimization allocates nothing on the prove path and shards
    /// never contend on the pool mutex.
    scratch: Vec<Arc<abcd::ScratchPool>>,
}

/// Locks a mutex, riding through poison: a worker that panicked while
/// holding a shared lock must not take its siblings down with it — the
/// protected state (an inflight slot) stays coherent across an unwind.
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a worker is doing right now, registered *before* any fallible
/// work so the supervisor can always fail the request cleanly.
struct Inflight {
    started: Instant,
    /// A clone of the connection, so a rescue can answer even after the
    /// worker's own handle unwound.
    conn: Option<Conn>,
    /// The supervisor already shut this connection down.
    kicked: bool,
}

/// Per-worker state shared between the worker thread and the supervisor.
#[derive(Default)]
struct SlotState {
    inflight: Mutex<Option<Inflight>>,
    /// Set by the worker as its last act on a clean exit; a finished
    /// thread that never set it panicked.
    done: AtomicBool,
    /// Set by the supervisor when it has replaced this worker; the
    /// (possibly stuck) thread exits at its next loop top.
    detached: AtomicBool,
}

/// A supervised worker: its thread handle, shared slot, and home shard.
struct WorkerCell {
    handle: Option<std::thread::JoinHandle<()>>,
    slot: Arc<SlotState>,
    shard: usize,
}

/// A running server; join or drop to clean up the socket files.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptors: Vec<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The first Unix-domain socket path the server listens on, if any.
    pub fn socket(&self) -> Option<&std::path::Path> {
        self.shared.resolved.iter().find_map(|a| match a {
            ListenAddr::Uds(p) => Some(p.as_path()),
            ListenAddr::Tcp(_) => None,
        })
    }

    /// The first TCP address the server listens on (ephemeral ports
    /// resolved to the real port), if any.
    pub fn tcp_addr(&self) -> Option<&str> {
        self.shared.resolved.iter().find_map(|a| match a {
            ListenAddr::Tcp(addr) => Some(addr.as_str()),
            ListenAddr::Uds(_) => None,
        })
    }

    /// Every address actually bound, TCP ports resolved.
    pub fn endpoints(&self) -> &[ListenAddr] {
        &self.shared.resolved
    }

    /// Blocks until the server has shut down and every admitted request
    /// has been answered. The supervisor reaps the workers.
    pub fn join(mut self) {
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
    }

    /// True once a `shutdown` request has been accepted.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        for addr in &self.shared.resolved {
            if let ListenAddr::Uds(path) = addr {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

/// Starts the daemon: binds every listener, spawns the acceptors, shard
/// workers and supervisor, and returns immediately.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    if config.listen.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "no listen addresses",
        ));
    }
    let mut listeners = Vec::with_capacity(config.listen.len());
    for addr in &config.listen {
        listeners.push(Listener::bind(addr)?);
    }
    let resolved: Vec<ListenAddr> = listeners.iter().map(Listener::resolved).collect();
    let shard_count = config.shards.max(1);
    let workers = config.workers.max(1);
    if let (Some(cache), Some(plan)) = (&config.cache, &config.chaos) {
        cache.set_chaos(Arc::clone(plan));
    }
    let shards = ShardSet::new(shard_count, config.queue, workers);
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        counters: Counters::default(),
        shards,
        resolved,
        acceptors_live: AtomicUsize::new(listeners.len()),
        scratch: (0..shard_count)
            .map(|_| Arc::new(abcd::ScratchPool::new()))
            .collect(),
        config,
    });

    let cells: Vec<WorkerCell> = (0..shard_count)
        .flat_map(|shard| (0..workers).map(move |_| shard))
        .map(|shard| spawn_worker(&shared, shard))
        .collect();
    let supervisor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || supervise(&shared, cells))
    };
    let acceptors = listeners
        .into_iter()
        .map(|listener| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        })
        .collect();
    Ok(ServerHandle {
        shared,
        acceptors,
        supervisor: Some(supervisor),
    })
}

fn spawn_worker(shared: &Arc<Shared>, shard: usize) -> WorkerCell {
    let slot = Arc::new(SlotState::default());
    let handle = {
        let shared = Arc::clone(shared);
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || worker_loop(&shared, shard, &slot))
    };
    WorkerCell {
        handle: Some(handle),
        slot,
        shard,
    }
}

/// The monitor loop: respawns panicked workers (rescuing their in-flight
/// request), kicks the connections of stuck ones, and detaches workers
/// wedged in compute. Exits once every worker has finished, which only
/// happens after shutdown drains the queues.
fn supervise(shared: &Arc<Shared>, mut cells: Vec<WorkerCell>) {
    loop {
        let mut alive = false;
        for cell in &mut cells {
            let Some(handle) = cell.handle.as_ref() else {
                continue;
            };
            if handle.is_finished() {
                let clean = cell.slot.done.load(Ordering::SeqCst);
                if let Some(h) = cell.handle.take() {
                    let _ = h.join();
                }
                if !clean {
                    rescue_inflight(shared, cell, "worker panicked; request failed");
                    shared
                        .counters
                        .worker_restarts
                        .fetch_add(1, Ordering::Relaxed);
                    *cell = spawn_worker(shared, cell.shard);
                    alive = true;
                }
                continue;
            }
            alive = true;
            let detach = {
                let mut guard = lock_tolerant(&cell.slot.inflight);
                match guard.as_mut() {
                    Some(inf) => {
                        let elapsed = inf.started.elapsed();
                        if !inf.kicked && elapsed > shared.config.stuck_after {
                            // Unwedge anything blocked on socket IO; the
                            // request fails with a structured IO error.
                            if let Some(c) = &inf.conn {
                                let _ = c.shutdown(Shutdown::Both);
                            }
                            inf.kicked = true;
                            shared.counters.worker_kicks.fetch_add(1, Ordering::Relaxed);
                        }
                        // Kicked and *still* wedged: stuck in compute,
                        // which nothing can interrupt — abandon the thread
                        // and recover the slot's capacity.
                        inf.kicked && elapsed > shared.config.stuck_after * 4
                    }
                    None => false,
                }
            };
            if detach {
                cell.slot.detached.store(true, Ordering::SeqCst);
                drop(cell.handle.take()); // never joined; exits on its own if it ever unsticks
                shared
                    .counters
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
                *cell = spawn_worker(shared, cell.shard);
            }
        }
        if !alive {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Answers a rescued worker's in-flight connection with a structured
/// error so the client sees a reply, not a hangup. The panicked worker
/// never reached [`ShardSet::finish`], so the shard's busy gauge is
/// rebalanced here.
fn rescue_inflight(shared: &Shared, cell: &WorkerCell, message: &str) {
    if let Some(mut inf) = lock_tolerant(&cell.slot.inflight).take() {
        if let Some(conn) = inf.conn.as_mut() {
            let _ = write_frame(conn, error_response(message).as_bytes());
            let _ = conn.shutdown(Shutdown::Both);
        }
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        shared.shards.finish(cell.shard);
    }
}

fn accept_loop(shared: &Shared, listener: Listener) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept errors (EMFILE, aborted handshake):
                // don't spin, don't die.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            // `conn` is the self-connect wake-up (or a late client).
            break;
        }
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            conn,
            enqueued: Instant::now(),
        };
        if let Err((job, position)) = shared.shards.admit(job) {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            let hint = busy_hint_ms(shared.shards.total_load());
            // Backpressure without reading the request: tiny frame, the
            // socket buffer absorbs it even if the client is mid-write.
            let mut conn = job.conn;
            let _ = write_frame(&mut conn, queued_response(position as u64, hint).as_bytes());
        }
    }
    shared.acceptors_live.fetch_sub(1, Ordering::SeqCst);
}

fn worker_loop(shared: &Shared, shard: usize, slot: &SlotState) {
    loop {
        if slot.detached.load(Ordering::SeqCst) {
            // Replaced by the supervisor while we were wedged; our slot
            // already has a new owner.
            return;
        }
        // Drain only once no acceptor can admit another connection, so a
        // job admitted concurrently with shutdown is still served.
        let drain =
            shared.stop.load(Ordering::SeqCst) && shared.acceptors_live.load(Ordering::SeqCst) == 0;
        match shared.shards.next_job(shard, drain) {
            Dequeue::TimedOut => continue,
            Dequeue::Drained => break,
            Dequeue::Job(job, _stolen) => {
                serve_job(shared, shard, slot, job);
                shared.shards.finish(shard);
            }
        }
    }
    slot.done.store(true, Ordering::SeqCst);
}

/// Serves one admitted connection end to end: inflight registration,
/// chaos, dispatch, reply frame(s), latency accounting.
fn serve_job(shared: &Shared, shard: usize, slot: &SlotState, job: Job) {
    let Job { mut conn, enqueued } = job;
    shared
        .counters
        .queue_hist
        .observe(shared.shards.total_depth() as u64);
    // Register the request before any fallible work, so a panic anywhere
    // below still gets the client a structured error.
    *lock_tolerant(&slot.inflight) = Some(Inflight {
        started: Instant::now(),
        conn: conn.try_clone().ok(),
        kicked: false,
    });
    if let Some(t) = shared.config.io_timeout {
        let _ = conn.set_read_timeout(Some(t));
        let _ = conn.set_write_timeout(Some(t));
    }
    let chaos = shared.config.chaos.as_deref();
    if chaos.is_some_and(|p| p.decide(ChaosSite::Disconnect)) {
        // Simulated mid-request disconnect: hang up without reading a
        // byte; the client sees EOF where a reply should be.
        let _ = conn.shutdown(Shutdown::Both);
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        *lock_tolerant(&slot.inflight) = None;
        return;
    }
    if chaos.is_some_and(|p| p.decide(ChaosSite::WorkerPanic)) {
        panic!("chaos: injected worker panic");
    }
    handle_connection(shared, shard, &mut conn, enqueued);
    *lock_tolerant(&slot.inflight) = None;
    shared
        .counters
        .latency
        .observe(enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
}

/// Writes one response frame, applying frame-level chaos when armed:
/// `frame_truncate` advertises the full length but delivers half and
/// hangs up; `frame_slow` delivers an intact frame in dribbled chunks.
fn write_response(shared: &Shared, conn: &mut Conn, response: &str) -> std::io::Result<()> {
    let payload = response.as_bytes();
    if let Some(plan) = &shared.config.chaos {
        if plan.decide(ChaosSite::FrameTruncate) {
            let len = u32::try_from(payload.len()).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
            })?;
            conn.write_all(&len.to_be_bytes())?;
            conn.write_all(&payload[..payload.len() / 2])?;
            conn.flush()?;
            let _ = conn.shutdown(Shutdown::Both);
            return Err(std::io::Error::other("chaos: truncated response frame"));
        }
        if let Some(seed) = plan.decide_seeded(ChaosSite::FrameSlow) {
            let len = u32::try_from(payload.len()).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
            })?;
            conn.write_all(&len.to_be_bytes())?;
            let chunk = 64 + (seed as usize % 193);
            for (i, part) in payload.chunks(chunk).enumerate() {
                // Pause between early chunks only, so big frames bound the
                // added latency instead of scaling it.
                if i > 0 && i <= 16 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                conn.write_all(part)?;
            }
            return conn.flush();
        }
    }
    write_frame(conn, payload)
}

/// Reads, parses and dispatches one request frame, writing every reply
/// frame; every outcome is answered (the server never drops a connection
/// silently). A v2 batch streams one reply per element, in order.
fn handle_connection(shared: &Shared, shard: usize, conn: &mut Conn, enqueued: Instant) {
    let payload = match read_frame(conn) {
        Ok(p) => p,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(shared, conn, &error_response(&format!("bad frame: {e}")));
            return;
        }
    };
    let request = match parse_request(&payload) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(shared, conn, &error_response(&e));
            return;
        }
    };
    let response = match request {
        Request::Batch(reqs) => {
            for req in &reqs {
                let reply = match handle_optimize(shared, shard, req, enqueued) {
                    Ok(reply) => {
                        shared.counters.served.fetch_add(1, Ordering::Relaxed);
                        reply
                    }
                    Err(e) => {
                        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                        error_response(&e)
                    }
                };
                if write_response(shared, conn, &reply).is_err() {
                    // The stream is broken; later elements cannot be
                    // delivered in order, so stop rather than desync.
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            return;
        }
        Request::Ping => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"pong\":true}".to_string()
        }
        Request::Stats => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            stats_response(shared)
        }
        Request::Metrics { deterministic } => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            metrics_response(shared, deterministic)
        }
        Request::Sleep(ms) => {
            // Diagnostic: lets tests pin a worker deterministically to
            // exercise the busy path. Capped at parse time.
            std::thread::sleep(std::time::Duration::from_millis(ms));
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"slept\":true}".to_string()
        }
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            // Wake every acceptor out of its blocking accept(), and every
            // parked worker so the drain check runs promptly.
            for addr in &shared.resolved {
                transport::wake(addr);
            }
            shared.shards.wake_all();
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"shutting_down\":true}".to_string()
        }
        Request::Optimize(req) => match handle_optimize(shared, shard, &req, enqueued) {
            Ok(response) => {
                shared.counters.served.fetch_add(1, Ordering::Relaxed);
                response
            }
            Err(e) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                error_response(&e)
            }
        },
    };
    if write_response(shared, conn, &response).is_err() {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn stats_response(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let c = &shared.counters;
    let cache = match &shared.config.cache {
        None => "null".to_string(),
        Some(cache) => {
            let s = cache.stats();
            format!(
                "{{\"hits\":{},\"misses\":{},\"stores\":{},\"evictions\":{},\
                 \"corrupt\":{},\"recovered\":{},\"write_errors\":{},\
                 \"disk_hits\":{},\"entries\":{},\"bytes\":{}}}",
                s.hits,
                s.misses,
                s.stores,
                s.evictions,
                s.corrupt,
                s.recovered,
                s.write_errors,
                s.disk_hits,
                s.entries,
                s.bytes,
            )
        }
    };
    let mut shards_json = String::from("[");
    for id in 0..shared.shards.shard_count() {
        let s = shared.shards.shard(id);
        if id > 0 {
            shards_json.push(',');
        }
        let _ = write!(
            shards_json,
            "{{\"shard\":{id},\"queue_depth\":{},\"busy\":{},\
             \"enqueued\":{},\"stolen_from\":{}}}",
            s.depth.load(Ordering::SeqCst),
            s.busy.load(Ordering::SeqCst),
            s.enqueued_total.load(Ordering::Relaxed),
            s.stolen_from.load(Ordering::Relaxed),
        );
    }
    shards_json.push(']');
    format!(
        "{{\"ok\":true,\"schema\":\"abcdd-stats/2\",\"accepted\":{},\"served\":{},\
         \"shed\":{},\"errors\":{},\"deadline_exceeded\":{},\"worker_restarts\":{},\
         \"worker_kicks\":{},\"queue_depth\":{},\"queued_replies\":{},\"steals\":{},\
         \"workers\":{},\"queue\":{},\"shard_count\":{},\"shards\":{shards_json},\
         \"cache\":{cache}}}",
        c.accepted.load(Ordering::Relaxed),
        c.served.load(Ordering::Relaxed),
        c.shed.load(Ordering::Relaxed),
        c.errors.load(Ordering::Relaxed),
        c.deadline_exceeded.load(Ordering::Relaxed),
        c.worker_restarts.load(Ordering::Relaxed),
        c.worker_kicks.load(Ordering::Relaxed),
        shared.shards.total_depth(),
        shared.shards.queued_replies.load(Ordering::Relaxed),
        shared.shards.steals.load(Ordering::Relaxed),
        shared.config.workers.max(1),
        shared.config.queue,
        shared.shards.shard_count(),
    )
}

/// Renders the Prometheus-style text exposition and wraps it in the JSON
/// reply. `deterministic` zeroes every sampled value (counters, gauges,
/// histogram buckets, sums, counts) while keeping the full line set —
/// configuration gauges (`abcdd_workers`, `abcdd_shards`) keep their real
/// values — so tests can compare the exposition byte-for-byte.
fn metrics_response(shared: &Shared, deterministic: bool) -> String {
    use std::fmt::Write as _;
    let c = &shared.counters;
    let v = |n: u64| if deterministic { 0 } else { n };
    let g = |n: usize| if deterministic { 0 } else { n };
    let mut text = String::new();
    let _ = writeln!(text, "# TYPE abcdd_requests_total counter");
    for (outcome, n) in [
        ("accepted", c.accepted.load(Ordering::Relaxed)),
        ("served", c.served.load(Ordering::Relaxed)),
        ("shed", c.shed.load(Ordering::Relaxed)),
        ("errors", c.errors.load(Ordering::Relaxed)),
    ] {
        let _ = writeln!(
            text,
            "abcdd_requests_total{{outcome=\"{outcome}\"}} {}",
            v(n)
        );
    }
    let _ = writeln!(text, "# TYPE abcdd_deadline_exceeded_total counter");
    let _ = writeln!(
        text,
        "abcdd_deadline_exceeded_total {}",
        v(c.deadline_exceeded.load(Ordering::Relaxed))
    );
    let _ = writeln!(text, "# TYPE abcdd_worker_restarts_total counter");
    let _ = writeln!(
        text,
        "abcdd_worker_restarts_total {}",
        v(c.worker_restarts.load(Ordering::Relaxed))
    );
    let _ = writeln!(text, "# TYPE abcdd_worker_kicks_total counter");
    let _ = writeln!(
        text,
        "abcdd_worker_kicks_total {}",
        v(c.worker_kicks.load(Ordering::Relaxed))
    );
    let _ = writeln!(text, "# TYPE abcdd_steals_total counter");
    let _ = writeln!(
        text,
        "abcdd_steals_total {}",
        v(shared.shards.steals.load(Ordering::Relaxed))
    );
    let _ = writeln!(text, "# TYPE abcdd_queued_replies_total counter");
    let _ = writeln!(
        text,
        "abcdd_queued_replies_total {}",
        v(shared.shards.queued_replies.load(Ordering::Relaxed))
    );
    let _ = writeln!(text, "# TYPE abcdd_queue_depth gauge");
    let _ = writeln!(text, "abcdd_queue_depth {}", g(shared.shards.total_depth()));
    let _ = writeln!(text, "# TYPE abcdd_shard_queue_depth gauge");
    for id in 0..shared.shards.shard_count() {
        let _ = writeln!(
            text,
            "abcdd_shard_queue_depth{{shard=\"{id}\"}} {}",
            g(shared.shards.shard(id).depth.load(Ordering::SeqCst))
        );
    }
    let _ = writeln!(text, "# TYPE abcdd_shard_busy gauge");
    for id in 0..shared.shards.shard_count() {
        let _ = writeln!(
            text,
            "abcdd_shard_busy{{shard=\"{id}\"}} {}",
            g(shared.shards.shard(id).busy.load(Ordering::SeqCst))
        );
    }
    let _ = writeln!(text, "# TYPE abcdd_shard_steals_total counter");
    for id in 0..shared.shards.shard_count() {
        let _ = writeln!(
            text,
            "abcdd_shard_steals_total{{shard=\"{id}\"}} {}",
            v(shared.shards.shard(id).stolen_from.load(Ordering::Relaxed))
        );
    }
    let _ = writeln!(text, "# TYPE abcdd_workers gauge");
    let _ = writeln!(text, "abcdd_workers {}", shared.config.workers.max(1));
    let _ = writeln!(text, "# TYPE abcdd_shards gauge");
    let _ = writeln!(text, "abcdd_shards {}", shared.shards.shard_count());
    if let Some(cache) = &shared.config.cache {
        let s = cache.stats();
        let _ = writeln!(text, "# TYPE abcdd_cache_events_total counter");
        for (event, n) in [
            ("hits", s.hits),
            ("misses", s.misses),
            ("stores", s.stores),
            ("evictions", s.evictions),
            ("corrupt", s.corrupt),
            ("recovered", s.recovered),
            ("write_errors", s.write_errors),
            ("disk_hits", s.disk_hits),
        ] {
            let _ = writeln!(
                text,
                "abcdd_cache_events_total{{event=\"{event}\"}} {}",
                v(n)
            );
        }
        let _ = writeln!(text, "# TYPE abcdd_cache_entries gauge");
        let _ = writeln!(text, "abcdd_cache_entries {}", g(s.entries));
        let _ = writeln!(text, "# TYPE abcdd_cache_bytes gauge");
        let _ = writeln!(text, "abcdd_cache_bytes {}", g(s.bytes));
    }
    if let Some(plan) = &shared.config.chaos {
        let _ = writeln!(text, "# TYPE abcdd_chaos_injections_total counter");
        for site in CHAOS_SITES {
            let _ = writeln!(
                text,
                "abcdd_chaos_injections_total{{site=\"{}\"}} {}",
                site.name(),
                v(plan.injected(site))
            );
        }
    }
    c.latency
        .exposition("abcdd_request_latency_us", &mut text, deterministic);
    c.queue_hist
        .exposition("abcdd_queue_depth_at_dequeue", &mut text, deterministic);
    format!(
        "{{\"ok\":true,\"exposition\":\"{}\"}}",
        crate::json::escape(&text)
    )
}

fn handle_optimize(
    shared: &Shared,
    shard: usize,
    req: &OptimizeRequest,
    enqueued: Instant,
) -> Result<String, String> {
    let front = || -> Result<Module, String> {
        match (&req.source, &req.ir) {
            (Some(src), None) => compile(src).map_err(|e| format!("compile: {e}")),
            (None, Some(ir)) => abcd_ir::parse_module(ir).map_err(|e| format!("parse: {e}")),
            _ => unreachable!("validated by parse_request"),
        }
    };
    let deadline_ms = req
        .deadline_ms
        .or_else(|| shared.config.request_timeout.map(|d| d.as_millis() as u64));
    let over_deadline = |d: u64| enqueued.elapsed() > Duration::from_millis(d);
    let mut module = front()?;
    if let Some(d) = deadline_ms {
        if over_deadline(d) {
            // Blown before analysis even started (queueing, slow read):
            // serve the module as compiled, every check kept.
            return Ok(deadline_reply(shared, req, &module, d, enqueued));
        }
    }
    let mut optimizer = Optimizer::with_options(req.options)
        .with_threads(shared.config.jobs)
        .with_trace(req.trace)
        .with_scratch_pool(Arc::clone(&shared.scratch[shard]));
    if let Some(cache) = &shared.config.cache {
        optimizer = optimizer.with_cache(Arc::clone(cache));
    }
    let threads = optimizer.threads();
    let started = Instant::now();
    let report = optimizer.optimize_module(&mut module, req.profile.as_ref());
    let wall = started.elapsed();
    if let Some(d) = deadline_ms {
        if over_deadline(d) {
            // The optimized result arrived late; the deadline contract
            // promises fail-open, so re-derive the unoptimized module
            // (cheap next to the optimization that just overran) and
            // serve that instead.
            let module = front()?;
            return Ok(deadline_reply(shared, req, &module, d, enqueued));
        }
    }
    let ir = module.to_string();
    let trace = if req.trace {
        let mut doc = abcd::module_trace_jsonl(&report, threads, req.deterministic_metrics);
        doc.push_str(&abcd::request_span_jsonl(
            shared.shards.total_depth(),
            enqueued.elapsed(),
            deadline_ms,
            req.deterministic_metrics,
        ));
        Some(doc)
    } else {
        None
    };
    let metrics = if req.metrics {
        let mut run = RunInfo::new(threads, wall);
        if let Some(cache) = &shared.config.cache {
            run = run.with_cache(cache.stats());
        }
        run.queue_depth = Some(shared.shards.total_depth());
        run.request_latency = Some(enqueued.elapsed());
        if req.deterministic_metrics {
            run = run.deterministic();
        }
        Some(module_metrics_json(&report, run))
    } else {
        None
    };
    Ok(ok_response(
        &ir,
        &report,
        false,
        trace.as_deref(),
        metrics.as_deref(),
    ))
}

/// Builds the fail-open reply for a blown deadline: the module exactly as
/// the front end produced it, a non-degraded `deadline_exceeded` incident,
/// and the `deadline_exceeded` response flag.
fn deadline_reply(
    shared: &Shared,
    req: &OptimizeRequest,
    module: &Module,
    deadline_ms: u64,
    enqueued: Instant,
) -> String {
    shared
        .counters
        .deadline_exceeded
        .fetch_add(1, Ordering::Relaxed);
    let elapsed_ms = if req.deterministic_metrics {
        0
    } else {
        enqueued.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    };
    let report = ModuleReport::deadline_fail_open(module, deadline_ms, elapsed_ms);
    let ir = module.to_string();
    let depth = shared.shards.total_depth();
    let trace = if req.trace {
        let mut doc = abcd::module_trace_jsonl(&report, 1, req.deterministic_metrics);
        doc.push_str(&abcd::request_span_jsonl(
            depth,
            enqueued.elapsed(),
            Some(deadline_ms),
            req.deterministic_metrics,
        ));
        Some(doc)
    } else {
        None
    };
    let metrics = if req.metrics {
        let mut run = RunInfo::new(1, Duration::ZERO);
        if let Some(cache) = &shared.config.cache {
            run = run.with_cache(cache.stats());
        }
        run.queue_depth = Some(depth);
        run.request_latency = Some(enqueued.elapsed());
        if req.deterministic_metrics {
            run = run.deterministic();
        }
        Some(module_metrics_json(&report, run))
    } else {
        None
    };
    ok_response(&ir, &report, true, trace.as_deref(), metrics.as_deref())
}
