//! The `abcdd` daemon: a bounded-admission, multi-worker optimization
//! service over a Unix-domain socket.
//!
//! # Architecture
//!
//! ```text
//!             accept()           sync_channel(queue)
//!   clients ──────────► acceptor ───────────────────► worker × N
//!                          │  try_send full?                │
//!                          └─► write Busy frame        Optimizer (+ shared
//!                              and close                AnalysisCache)
//!                                                           ▲
//!                                          supervisor ──────┘
//!                                          (respawn / kick / detach)
//! ```
//!
//! One thread accepts connections and *only* accepts: admission control is
//! a `try_send` onto a bounded channel, so a full queue is detected without
//! reading a byte of the request and answered with the documented `busy`
//! response carrying an adaptive retry hint. Workers own the whole request
//! lifecycle (read frame → parse → optimize → write frame), sharing one
//! [`AnalysisCache`] so a function optimized for any client is a cache hit
//! for every later client.
//!
//! # Supervision
//!
//! A supervisor thread watches every worker. A worker that *panicked* is
//! reaped and respawned, and its in-flight connection — registered in a
//! per-worker slot before any fallible work — receives a structured error
//! instead of a silent hangup (`worker_restarts`). A worker *stuck* past
//! [`ServerConfig::stuck_after`] first has its connection shut down, which
//! unwedges anything blocked on socket IO (`worker_kicks`); if it stays
//! wedged well past that — stuck in compute, which no signal can
//! interrupt — the thread is detached and a replacement takes its slot, so
//! capacity recovers even from a runaway request.
//!
//! # Deadlines
//!
//! Requests may carry `deadline_ms`, or inherit
//! [`ServerConfig::request_timeout`]. A tripped deadline **fails open**:
//! the reply is the compiled but unoptimized module — every bounds check
//! kept, correctness untouched — with a non-degraded `deadline_exceeded`
//! incident. Socket reads and writes are additionally bounded by
//! [`ServerConfig::io_timeout`], so a stalled peer cannot pin a worker.
//!
//! # Fault injection
//!
//! An armed [`ChaosPlan`] injects failures at the service layer: worker
//! panics, truncated and slow-trickled response frames, and mid-request
//! disconnects (disk faults live in the cache layer). Decisions are
//! deterministic per `(seed, site, sequence)`, so a chaos soak is
//! replayable. Production servers run with no plan; the code paths chaos
//! exercises are the same ones real faults take.
//!
//! # Shutdown
//!
//! A `shutdown` request sets the stop flag, then self-connects to the
//! socket to wake the acceptor out of its blocking `accept`. The acceptor
//! exits and drops its channel sender; workers drain every request already
//! admitted (the graceful part), then see the channel close and exit. The
//! supervisor reaps them and exits last; [`ServerHandle::join`] observes
//! all of it.

use crate::proto::{
    busy_response, error_response, ok_response, parse_request, read_frame, write_frame,
    OptimizeRequest, Request,
};
use abcd::{
    module_metrics_json, AnalysisCache, ChaosPlan, ChaosSite, ModuleReport, Optimizer, RunInfo,
    CHAOS_SITES,
};
use abcd_frontend::compile;
use abcd_ir::Module;
use std::io::Write as _;
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Floor of the adaptive busy hint (an empty queue still advises a pause).
const BUSY_HINT_BASE_MS: u64 = 5;
/// Ceiling of the adaptive busy hint.
const BUSY_HINT_CAP_MS: u64 = 500;

/// The advisory retry delay for a shed connection, scaled by the
/// admission-queue depth observed at shed time: a deeper queue advises a
/// longer pause, so a thundering herd spreads out instead of re-colliding.
fn busy_hint_ms(queue_depth: usize) -> u64 {
    (BUSY_HINT_BASE_MS * (queue_depth as u64 + 1)).clamp(BUSY_HINT_BASE_MS, BUSY_HINT_CAP_MS)
}

/// Configuration for [`start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix-domain socket path (created on start, removed on drop).
    pub socket: PathBuf,
    /// Worker threads handling requests concurrently.
    pub workers: usize,
    /// Bounded admission-queue depth; `0` means a worker must be free at
    /// connect time (rendezvous), anything else queues that many requests.
    pub queue: usize,
    /// `Optimizer::with_threads` parallelism *within* one request.
    pub jobs: usize,
    /// Shared analysis cache, if caching is enabled.
    pub cache: Option<Arc<AnalysisCache>>,
    /// Default deadline for requests that carry no `deadline_ms`; `None`
    /// means requests without their own deadline run unbounded.
    pub request_timeout: Option<Duration>,
    /// Socket read/write timeout for request and response frames; `None`
    /// disables it (a stalled peer then relies on supervision kicks).
    pub io_timeout: Option<Duration>,
    /// Supervision threshold: an in-flight request older than this gets
    /// its connection kicked; one older than four times this gets its
    /// worker detached and replaced.
    pub stuck_after: Duration,
    /// Fault-injection schedule; `None` (production) injects nothing.
    pub chaos: Option<Arc<ChaosPlan>>,
}

impl ServerConfig {
    /// A single-worker server on `socket` with library defaults.
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            workers: 1,
            queue: 8,
            jobs: 0,
            cache: None,
            request_timeout: None,
            io_timeout: Some(Duration::from_secs(30)),
            stuck_after: Duration::from_secs(30),
            chaos: None,
        }
    }
}

/// Counters shared by the acceptor and workers, reported by `stats` and
/// exposed by `metrics`.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    deadline_exceeded: AtomicU64,
    worker_restarts: AtomicU64,
    worker_kicks: AtomicU64,
    queue_depth: AtomicUsize,
    /// Request latency (enqueue → response written), microseconds.
    latency: Hist,
    /// Admission-queue depth observed at each dequeue.
    queue_hist: Hist,
}

/// A lock-free log2-bucketed histogram. Bucket 0 counts zero samples;
/// bucket `i ≥ 1` counts samples in `[2^(i-1), 2^i − 1]`, so the
/// Prometheus `le` bound of bucket `i` is `2^i − 1`; the last bucket
/// additionally absorbs everything larger.
#[derive(Debug, Default)]
struct Hist {
    buckets: [AtomicU64; 32],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Hist {
    fn observe(&self, v: u64) {
        let b = (64 - v.leading_zeros()).min(31) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends the Prometheus exposition lines for this histogram.
    /// `deterministic` renders the full bucket ladder with every sample
    /// zeroed, so the *format* is byte-stable across runs.
    fn exposition(&self, name: &str, out: &mut String, deterministic: bool) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            if !deterministic {
                cumulative += bucket.load(Ordering::Relaxed);
            }
            let le = if i == 31 {
                "+Inf".to_string()
            } else {
                ((1u64 << i) - 1).to_string()
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let (sum, count) = if deterministic {
            (0, 0)
        } else {
            (
                self.sum.load(Ordering::Relaxed),
                self.count.load(Ordering::Relaxed),
            )
        };
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {count}");
    }
}

struct Shared {
    config: ServerConfig,
    stop: AtomicBool,
    counters: Counters,
    /// Pooled analysis scratch shared across requests: arenas warmed by
    /// one request serve the next, so steady-state re-optimization
    /// allocates nothing on the prove path.
    scratch: Arc<abcd::ScratchPool>,
}

/// Locks a mutex, riding through poison: a worker that panicked while
/// holding the receiver lock must not take its siblings down with it —
/// the protected state (a channel receiver, an inflight slot) stays
/// coherent across an unwind.
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What a worker is doing right now, registered *before* any fallible
/// work so the supervisor can always fail the request cleanly.
struct Inflight {
    started: Instant,
    /// A clone of the connection, so a rescue can answer even after the
    /// worker's own handle unwound.
    conn: Option<UnixStream>,
    /// The supervisor already shut this connection down.
    kicked: bool,
}

/// Per-worker state shared between the worker thread and the supervisor.
#[derive(Default)]
struct SlotState {
    inflight: Mutex<Option<Inflight>>,
    /// Set by the worker as its last act on a clean exit; a finished
    /// thread that never set it panicked.
    done: AtomicBool,
    /// Set by the supervisor when it has replaced this worker; the
    /// (possibly stuck) thread exits at its next loop top.
    detached: AtomicBool,
}

/// A supervised worker: its thread handle plus the shared slot.
struct WorkerCell {
    handle: Option<std::thread::JoinHandle<()>>,
    slot: Arc<SlotState>,
}

type Conn = (UnixStream, Instant);

/// A running server; join or drop to clean up the socket file.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path the server is listening on.
    pub fn socket(&self) -> &std::path::Path {
        &self.shared.config.socket
    }

    /// Blocks until the server has shut down and every admitted request
    /// has been answered. The supervisor reaps the workers.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(s) = self.supervisor.take() {
            let _ = s.join();
        }
    }

    /// True once a `shutdown` request has been accepted.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.shared.config.socket);
    }
}

/// Starts the daemon: binds the socket, spawns the acceptor, workers and
/// supervisor, and returns immediately.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    // A stale socket file from a crashed daemon would make bind fail;
    // connect() distinguishes "stale" from "live" so we never steal a
    // running server's socket.
    if config.socket.exists() {
        if UnixStream::connect(&config.socket).is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("{} already has a live server", config.socket.display()),
            ));
        }
        std::fs::remove_file(&config.socket)?;
    }
    let listener = UnixListener::bind(&config.socket)?;
    let workers = config.workers.max(1);
    if let (Some(cache), Some(plan)) = (&config.cache, &config.chaos) {
        cache.set_chaos(Arc::clone(plan));
    }
    let (tx, rx) = std::sync::mpsc::sync_channel::<Conn>(config.queue);
    let rx = Arc::new(Mutex::new(rx));
    let shared = Arc::new(Shared {
        config,
        stop: AtomicBool::new(false),
        counters: Counters::default(),
        scratch: Arc::new(abcd::ScratchPool::new()),
    });

    let cells: Vec<WorkerCell> = (0..workers).map(|_| spawn_worker(&shared, &rx)).collect();
    let supervisor = {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&rx);
        std::thread::spawn(move || supervise(&shared, &rx, cells))
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, listener, tx))
    };
    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        supervisor: Some(supervisor),
    })
}

fn spawn_worker(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Conn>>>) -> WorkerCell {
    let slot = Arc::new(SlotState::default());
    let handle = {
        let shared = Arc::clone(shared);
        let rx = Arc::clone(rx);
        let slot = Arc::clone(&slot);
        std::thread::spawn(move || worker_loop(&shared, &rx, &slot))
    };
    WorkerCell {
        handle: Some(handle),
        slot,
    }
}

/// The monitor loop: respawns panicked workers (rescuing their in-flight
/// request), kicks the connections of stuck ones, and detaches workers
/// wedged in compute. Exits once every worker has finished, which only
/// happens after shutdown drains the queue.
fn supervise(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Conn>>>, mut cells: Vec<WorkerCell>) {
    loop {
        let mut alive = false;
        for cell in &mut cells {
            let Some(handle) = cell.handle.as_ref() else {
                continue;
            };
            if handle.is_finished() {
                let clean = cell.slot.done.load(Ordering::SeqCst);
                if let Some(h) = cell.handle.take() {
                    let _ = h.join();
                }
                if !clean {
                    rescue_inflight(shared, &cell.slot, "worker panicked; request failed");
                    shared
                        .counters
                        .worker_restarts
                        .fetch_add(1, Ordering::Relaxed);
                    *cell = spawn_worker(shared, rx);
                    alive = true;
                }
                continue;
            }
            alive = true;
            let detach = {
                let mut guard = lock_tolerant(&cell.slot.inflight);
                match guard.as_mut() {
                    Some(inf) => {
                        let elapsed = inf.started.elapsed();
                        if !inf.kicked && elapsed > shared.config.stuck_after {
                            // Unwedge anything blocked on socket IO; the
                            // request fails with a structured IO error.
                            if let Some(c) = &inf.conn {
                                let _ = c.shutdown(Shutdown::Both);
                            }
                            inf.kicked = true;
                            shared.counters.worker_kicks.fetch_add(1, Ordering::Relaxed);
                        }
                        // Kicked and *still* wedged: stuck in compute,
                        // which nothing can interrupt — abandon the thread
                        // and recover the slot's capacity.
                        inf.kicked && elapsed > shared.config.stuck_after * 4
                    }
                    None => false,
                }
            };
            if detach {
                cell.slot.detached.store(true, Ordering::SeqCst);
                drop(cell.handle.take()); // never joined; exits on its own if it ever unsticks
                shared
                    .counters
                    .worker_restarts
                    .fetch_add(1, Ordering::Relaxed);
                *cell = spawn_worker(shared, rx);
            }
        }
        if !alive {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Answers a rescued worker's in-flight connection with a structured
/// error so the client sees a reply, not a hangup.
fn rescue_inflight(shared: &Shared, slot: &SlotState, message: &str) {
    if let Some(mut inf) = lock_tolerant(&slot.inflight).take() {
        if let Some(conn) = inf.conn.as_mut() {
            let _ = write_frame(conn, error_response(message).as_bytes());
            let _ = conn.shutdown(Shutdown::Both);
        }
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
}

fn accept_loop(shared: &Shared, listener: UnixListener, tx: SyncSender<Conn>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            // `conn` is the self-connect wake-up (or a late client); the
            // channel sender drops below, which is what drains workers.
            break;
        }
        let Ok(conn) = conn else { continue };
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        shared.counters.queue_depth.fetch_add(1, Ordering::SeqCst);
        match tx.try_send((conn, Instant::now())) {
            Ok(()) => {}
            Err(TrySendError::Full((mut conn, _)) | TrySendError::Disconnected((mut conn, _))) => {
                let depth = shared
                    .counters
                    .queue_depth
                    .fetch_sub(1, Ordering::SeqCst)
                    .saturating_sub(1);
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                // Load-shed without reading the request: tiny frame, the
                // socket buffer absorbs it even if the client is mid-write.
                let _ = write_frame(&mut conn, busy_response(busy_hint_ms(depth)).as_bytes());
            }
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Conn>>, slot: &SlotState) {
    loop {
        if slot.detached.load(Ordering::SeqCst) {
            // Replaced by the supervisor while we were wedged; our slot
            // already has a new owner.
            return;
        }
        // Hold the lock only for the dequeue so workers drain in parallel;
        // the timeout keeps the detach check responsive.
        let msg = lock_tolerant(rx).recv_timeout(Duration::from_millis(25));
        let (mut conn, enqueued) = match msg {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let depth_before = shared.counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
        shared
            .counters
            .queue_hist
            .observe(depth_before.saturating_sub(1) as u64);
        // Register the request before any fallible work, so a panic
        // anywhere below still gets the client a structured error.
        *lock_tolerant(&slot.inflight) = Some(Inflight {
            started: Instant::now(),
            conn: conn.try_clone().ok(),
            kicked: false,
        });
        if let Some(t) = shared.config.io_timeout {
            let _ = conn.set_read_timeout(Some(t));
            let _ = conn.set_write_timeout(Some(t));
        }
        let chaos = shared.config.chaos.as_deref();
        if chaos.is_some_and(|p| p.decide(ChaosSite::Disconnect)) {
            // Simulated mid-request disconnect: hang up without reading a
            // byte; the client sees EOF where a reply should be.
            let _ = conn.shutdown(Shutdown::Both);
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            *lock_tolerant(&slot.inflight) = None;
            continue;
        }
        if chaos.is_some_and(|p| p.decide(ChaosSite::WorkerPanic)) {
            panic!("chaos: injected worker panic");
        }
        let response = handle_connection(shared, &mut conn, enqueued);
        if write_response(shared, &mut conn, &response).is_err() {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        *lock_tolerant(&slot.inflight) = None;
        shared
            .counters
            .latency
            .observe(enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
    slot.done.store(true, Ordering::SeqCst);
}

/// Writes the response frame, applying frame-level chaos when armed:
/// `frame_truncate` advertises the full length but delivers half and
/// hangs up; `frame_slow` delivers an intact frame in dribbled chunks.
fn write_response(shared: &Shared, conn: &mut UnixStream, response: &str) -> std::io::Result<()> {
    let payload = response.as_bytes();
    if let Some(plan) = &shared.config.chaos {
        if plan.decide(ChaosSite::FrameTruncate) {
            let len = u32::try_from(payload.len()).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
            })?;
            conn.write_all(&len.to_be_bytes())?;
            conn.write_all(&payload[..payload.len() / 2])?;
            conn.flush()?;
            let _ = conn.shutdown(Shutdown::Both);
            return Err(std::io::Error::other("chaos: truncated response frame"));
        }
        if let Some(seed) = plan.decide_seeded(ChaosSite::FrameSlow) {
            let len = u32::try_from(payload.len()).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
            })?;
            conn.write_all(&len.to_be_bytes())?;
            let chunk = 64 + (seed as usize % 193);
            for (i, part) in payload.chunks(chunk).enumerate() {
                // Pause between early chunks only, so big frames bound the
                // added latency instead of scaling it.
                if i > 0 && i <= 16 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                conn.write_all(part)?;
            }
            return conn.flush();
        }
    }
    write_frame(conn, payload)
}

/// Reads, parses and dispatches one request; every outcome is a response
/// string (the server never drops a connection silently).
fn handle_connection(shared: &Shared, conn: &mut UnixStream, enqueued: Instant) -> String {
    let payload = match read_frame(conn) {
        Ok(p) => p,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(&format!("bad frame: {e}"));
        }
    };
    let request = match parse_request(&payload) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(&e);
        }
    };
    match request {
        Request::Ping => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"pong\":true}".to_string()
        }
        Request::Stats => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            stats_response(shared)
        }
        Request::Metrics { deterministic } => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            metrics_response(shared, deterministic)
        }
        Request::Sleep(ms) => {
            // Diagnostic: lets tests pin a worker deterministically to
            // exercise the busy path. Capped at parse time.
            std::thread::sleep(std::time::Duration::from_millis(ms));
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"slept\":true}".to_string()
        }
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            // Wake the acceptor out of its blocking accept().
            let _ = UnixStream::connect(&shared.config.socket);
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"shutting_down\":true}".to_string()
        }
        Request::Optimize(req) => match handle_optimize(shared, &req, enqueued) {
            Ok(response) => {
                shared.counters.served.fetch_add(1, Ordering::Relaxed);
                response
            }
            Err(e) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                error_response(&e)
            }
        },
    }
}

fn stats_response(shared: &Shared) -> String {
    let c = &shared.counters;
    let cache = match &shared.config.cache {
        None => "null".to_string(),
        Some(cache) => {
            let s = cache.stats();
            format!(
                "{{\"hits\":{},\"misses\":{},\"stores\":{},\"evictions\":{},\
                 \"corrupt\":{},\"recovered\":{},\"write_errors\":{},\
                 \"disk_hits\":{},\"entries\":{},\"bytes\":{}}}",
                s.hits,
                s.misses,
                s.stores,
                s.evictions,
                s.corrupt,
                s.recovered,
                s.write_errors,
                s.disk_hits,
                s.entries,
                s.bytes,
            )
        }
    };
    format!(
        "{{\"ok\":true,\"accepted\":{},\"served\":{},\"shed\":{},\"errors\":{},\
         \"deadline_exceeded\":{},\"worker_restarts\":{},\"worker_kicks\":{},\
         \"queue_depth\":{},\"workers\":{},\"queue\":{},\"cache\":{cache}}}",
        c.accepted.load(Ordering::Relaxed),
        c.served.load(Ordering::Relaxed),
        c.shed.load(Ordering::Relaxed),
        c.errors.load(Ordering::Relaxed),
        c.deadline_exceeded.load(Ordering::Relaxed),
        c.worker_restarts.load(Ordering::Relaxed),
        c.worker_kicks.load(Ordering::Relaxed),
        c.queue_depth.load(Ordering::SeqCst),
        shared.config.workers.max(1),
        shared.config.queue,
    )
}

/// Renders the Prometheus-style text exposition and wraps it in the JSON
/// reply. `deterministic` zeroes every sampled value (histogram buckets,
/// sums, counts) while keeping the full line set, so tests can compare
/// the exposition byte-for-byte.
fn metrics_response(shared: &Shared, deterministic: bool) -> String {
    use std::fmt::Write as _;
    let c = &shared.counters;
    let mut text = String::new();
    let _ = writeln!(text, "# TYPE abcdd_requests_total counter");
    for (outcome, n) in [
        ("accepted", c.accepted.load(Ordering::Relaxed)),
        ("served", c.served.load(Ordering::Relaxed)),
        ("shed", c.shed.load(Ordering::Relaxed)),
        ("errors", c.errors.load(Ordering::Relaxed)),
    ] {
        let _ = writeln!(text, "abcdd_requests_total{{outcome=\"{outcome}\"}} {n}");
    }
    let _ = writeln!(text, "# TYPE abcdd_deadline_exceeded_total counter");
    let _ = writeln!(
        text,
        "abcdd_deadline_exceeded_total {}",
        c.deadline_exceeded.load(Ordering::Relaxed)
    );
    let _ = writeln!(text, "# TYPE abcdd_worker_restarts_total counter");
    let _ = writeln!(
        text,
        "abcdd_worker_restarts_total {}",
        c.worker_restarts.load(Ordering::Relaxed)
    );
    let _ = writeln!(text, "# TYPE abcdd_worker_kicks_total counter");
    let _ = writeln!(
        text,
        "abcdd_worker_kicks_total {}",
        c.worker_kicks.load(Ordering::Relaxed)
    );
    let _ = writeln!(text, "# TYPE abcdd_queue_depth gauge");
    let _ = writeln!(
        text,
        "abcdd_queue_depth {}",
        c.queue_depth.load(Ordering::SeqCst)
    );
    let _ = writeln!(text, "# TYPE abcdd_workers gauge");
    let _ = writeln!(text, "abcdd_workers {}", shared.config.workers.max(1));
    if let Some(cache) = &shared.config.cache {
        let s = cache.stats();
        let _ = writeln!(text, "# TYPE abcdd_cache_events_total counter");
        for (event, n) in [
            ("hits", s.hits),
            ("misses", s.misses),
            ("stores", s.stores),
            ("evictions", s.evictions),
            ("corrupt", s.corrupt),
            ("recovered", s.recovered),
            ("write_errors", s.write_errors),
            ("disk_hits", s.disk_hits),
        ] {
            let _ = writeln!(text, "abcdd_cache_events_total{{event=\"{event}\"}} {n}");
        }
        let _ = writeln!(text, "# TYPE abcdd_cache_entries gauge");
        let _ = writeln!(text, "abcdd_cache_entries {}", s.entries);
        let _ = writeln!(text, "# TYPE abcdd_cache_bytes gauge");
        let _ = writeln!(text, "abcdd_cache_bytes {}", s.bytes);
    }
    if let Some(plan) = &shared.config.chaos {
        let _ = writeln!(text, "# TYPE abcdd_chaos_injections_total counter");
        for site in CHAOS_SITES {
            let _ = writeln!(
                text,
                "abcdd_chaos_injections_total{{site=\"{}\"}} {}",
                site.name(),
                plan.injected(site)
            );
        }
    }
    c.latency
        .exposition("abcdd_request_latency_us", &mut text, deterministic);
    c.queue_hist
        .exposition("abcdd_queue_depth_at_dequeue", &mut text, deterministic);
    format!(
        "{{\"ok\":true,\"exposition\":\"{}\"}}",
        crate::json::escape(&text)
    )
}

fn handle_optimize(
    shared: &Shared,
    req: &OptimizeRequest,
    enqueued: Instant,
) -> Result<String, String> {
    let front = || -> Result<Module, String> {
        match (&req.source, &req.ir) {
            (Some(src), None) => compile(src).map_err(|e| format!("compile: {e}")),
            (None, Some(ir)) => abcd_ir::parse_module(ir).map_err(|e| format!("parse: {e}")),
            _ => unreachable!("validated by parse_request"),
        }
    };
    let deadline_ms = req
        .deadline_ms
        .or_else(|| shared.config.request_timeout.map(|d| d.as_millis() as u64));
    let over_deadline = |d: u64| enqueued.elapsed() > Duration::from_millis(d);
    let mut module = front()?;
    if let Some(d) = deadline_ms {
        if over_deadline(d) {
            // Blown before analysis even started (queueing, slow read):
            // serve the module as compiled, every check kept.
            return Ok(deadline_reply(shared, req, &module, d, enqueued));
        }
    }
    let mut optimizer = Optimizer::with_options(req.options)
        .with_threads(shared.config.jobs)
        .with_trace(req.trace)
        .with_scratch_pool(Arc::clone(&shared.scratch));
    if let Some(cache) = &shared.config.cache {
        optimizer = optimizer.with_cache(Arc::clone(cache));
    }
    let threads = optimizer.threads();
    let started = Instant::now();
    let report = optimizer.optimize_module(&mut module, req.profile.as_ref());
    let wall = started.elapsed();
    if let Some(d) = deadline_ms {
        if over_deadline(d) {
            // The optimized result arrived late; the deadline contract
            // promises fail-open, so re-derive the unoptimized module
            // (cheap next to the optimization that just overran) and
            // serve that instead.
            let module = front()?;
            return Ok(deadline_reply(shared, req, &module, d, enqueued));
        }
    }
    let ir = module.to_string();
    let trace = if req.trace {
        let mut doc = abcd::module_trace_jsonl(&report, threads, req.deterministic_metrics);
        doc.push_str(&abcd::request_span_jsonl(
            shared.counters.queue_depth.load(Ordering::SeqCst),
            enqueued.elapsed(),
            deadline_ms,
            req.deterministic_metrics,
        ));
        Some(doc)
    } else {
        None
    };
    let metrics = if req.metrics {
        let mut run = RunInfo::new(threads, wall);
        if let Some(cache) = &shared.config.cache {
            run = run.with_cache(cache.stats());
        }
        run.queue_depth = Some(shared.counters.queue_depth.load(Ordering::SeqCst));
        run.request_latency = Some(enqueued.elapsed());
        if req.deterministic_metrics {
            run = run.deterministic();
        }
        Some(module_metrics_json(&report, run))
    } else {
        None
    };
    Ok(ok_response(
        &ir,
        &report,
        false,
        trace.as_deref(),
        metrics.as_deref(),
    ))
}

/// Builds the fail-open reply for a blown deadline: the module exactly as
/// the front end produced it, a non-degraded `deadline_exceeded` incident,
/// and the `deadline_exceeded` response flag.
fn deadline_reply(
    shared: &Shared,
    req: &OptimizeRequest,
    module: &Module,
    deadline_ms: u64,
    enqueued: Instant,
) -> String {
    shared
        .counters
        .deadline_exceeded
        .fetch_add(1, Ordering::Relaxed);
    let elapsed_ms = if req.deterministic_metrics {
        0
    } else {
        enqueued.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    };
    let report = ModuleReport::deadline_fail_open(module, deadline_ms, elapsed_ms);
    let ir = module.to_string();
    let depth = shared.counters.queue_depth.load(Ordering::SeqCst);
    let trace = if req.trace {
        let mut doc = abcd::module_trace_jsonl(&report, 1, req.deterministic_metrics);
        doc.push_str(&abcd::request_span_jsonl(
            depth,
            enqueued.elapsed(),
            Some(deadline_ms),
            req.deterministic_metrics,
        ));
        Some(doc)
    } else {
        None
    };
    let metrics = if req.metrics {
        let mut run = RunInfo::new(1, Duration::ZERO);
        if let Some(cache) = &shared.config.cache {
            run = run.with_cache(cache.stats());
        }
        run.queue_depth = Some(depth);
        run.request_latency = Some(enqueued.elapsed());
        if req.deterministic_metrics {
            run = run.deterministic();
        }
        Some(module_metrics_json(&report, run))
    } else {
        None
    };
    ok_response(&ir, &report, true, trace.as_deref(), metrics.as_deref())
}
