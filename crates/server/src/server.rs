//! The `abcdd` daemon: a bounded-admission, multi-worker optimization
//! service over a Unix-domain socket.
//!
//! # Architecture
//!
//! ```text
//!             accept()           sync_channel(queue)
//!   clients ──────────► acceptor ───────────────────► worker × N
//!                          │  try_send full?                │
//!                          └─► write Busy frame        Optimizer (+ shared
//!                              and close                AnalysisCache)
//! ```
//!
//! One thread accepts connections and *only* accepts: admission control is
//! a `try_send` onto a bounded channel, so a full queue is detected without
//! reading a byte of the request and answered with the documented `busy`
//! response. Workers own the whole request lifecycle (read frame → parse →
//! optimize → write frame), sharing one [`AnalysisCache`] so a function
//! optimized for any client is a cache hit for every later client.
//!
//! # Shutdown
//!
//! A `shutdown` request sets the stop flag, then self-connects to the
//! socket to wake the acceptor out of its blocking `accept`. The acceptor
//! exits and drops its channel sender; workers drain every request already
//! admitted (the graceful part), then see the channel close and exit.
//! [`ServerHandle::join`] observes all of it.

use crate::proto::{
    busy_response, error_response, ok_response, parse_request, read_frame, write_frame,
    OptimizeRequest, Request,
};
use abcd::{module_metrics_json, AnalysisCache, Optimizer, RunInfo};
use abcd_frontend::compile;
use abcd_ir::Module;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How long a shed client should wait before retrying (advisory).
const RETRY_AFTER_MS: u64 = 25;

/// Configuration for [`start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix-domain socket path (created on start, removed on drop).
    pub socket: PathBuf,
    /// Worker threads handling requests concurrently.
    pub workers: usize,
    /// Bounded admission-queue depth; `0` means a worker must be free at
    /// connect time (rendezvous), anything else queues that many requests.
    pub queue: usize,
    /// `Optimizer::with_threads` parallelism *within* one request.
    pub jobs: usize,
    /// Shared analysis cache, if caching is enabled.
    pub cache: Option<Arc<AnalysisCache>>,
}

impl ServerConfig {
    /// A single-worker server on `socket` with library defaults.
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            workers: 1,
            queue: 8,
            jobs: 0,
            cache: None,
        }
    }
}

/// Counters shared by the acceptor and workers, reported by `stats` and
/// exposed by `metrics`.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    queue_depth: AtomicUsize,
    /// Request latency (enqueue → response written), microseconds.
    latency: Hist,
    /// Admission-queue depth observed at each dequeue.
    queue_hist: Hist,
}

/// A lock-free log2-bucketed histogram. Bucket 0 counts zero samples;
/// bucket `i ≥ 1` counts samples in `[2^(i-1), 2^i − 1]`, so the
/// Prometheus `le` bound of bucket `i` is `2^i − 1`; the last bucket
/// additionally absorbs everything larger.
#[derive(Debug, Default)]
struct Hist {
    buckets: [AtomicU64; 32],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Hist {
    fn observe(&self, v: u64) {
        let b = (64 - v.leading_zeros()).min(31) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends the Prometheus exposition lines for this histogram.
    /// `deterministic` renders the full bucket ladder with every sample
    /// zeroed, so the *format* is byte-stable across runs.
    fn exposition(&self, name: &str, out: &mut String, deterministic: bool) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            if !deterministic {
                cumulative += bucket.load(Ordering::Relaxed);
            }
            let le = if i == 31 {
                "+Inf".to_string()
            } else {
                ((1u64 << i) - 1).to_string()
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let (sum, count) = if deterministic {
            (0, 0)
        } else {
            (
                self.sum.load(Ordering::Relaxed),
                self.count.load(Ordering::Relaxed),
            )
        };
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {count}");
    }
}

struct Shared {
    config: ServerConfig,
    stop: AtomicBool,
    counters: Counters,
}

/// A running server; join or drop to clean up the socket file.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path the server is listening on.
    pub fn socket(&self) -> &std::path::Path {
        &self.shared.config.socket
    }

    /// Blocks until the server has shut down and every admitted request
    /// has been answered.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// True once a `shutdown` request has been accepted.
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.shared.config.socket);
    }
}

/// Starts the daemon: binds the socket, spawns the acceptor and workers,
/// and returns immediately.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    // A stale socket file from a crashed daemon would make bind fail;
    // connect() distinguishes "stale" from "live" so we never steal a
    // running server's socket.
    if config.socket.exists() {
        if UnixStream::connect(&config.socket).is_ok() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("{} already has a live server", config.socket.display()),
            ));
        }
        std::fs::remove_file(&config.socket)?;
    }
    let listener = UnixListener::bind(&config.socket)?;
    let workers = config.workers.max(1);
    let (tx, rx) = std::sync::mpsc::sync_channel::<(UnixStream, Instant)>(config.queue);
    let rx = Arc::new(Mutex::new(rx));
    let shared = Arc::new(Shared {
        config,
        stop: AtomicBool::new(false),
        counters: Counters::default(),
    });

    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&rx);
        handles.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
    }
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, listener, tx))
    };
    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        workers: handles,
    })
}

fn accept_loop(shared: &Shared, listener: UnixListener, tx: SyncSender<(UnixStream, Instant)>) {
    for conn in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            // `conn` is the self-connect wake-up (or a late client); the
            // channel sender drops below, which is what drains workers.
            break;
        }
        let Ok(conn) = conn else { continue };
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        shared.counters.queue_depth.fetch_add(1, Ordering::SeqCst);
        match tx.try_send((conn, Instant::now())) {
            Ok(()) => {}
            Err(TrySendError::Full((mut conn, _)) | TrySendError::Disconnected((mut conn, _))) => {
                shared.counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                // Load-shed without reading the request: tiny frame, the
                // socket buffer absorbs it even if the client is mid-write.
                let _ = write_frame(&mut conn, busy_response(RETRY_AFTER_MS).as_bytes());
            }
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<(UnixStream, Instant)>>) {
    loop {
        // Hold the lock only for the dequeue so workers drain in parallel.
        let msg = rx.lock().expect("receiver lock").recv();
        let Ok((mut conn, enqueued)) = msg else {
            return;
        };
        let depth_before = shared.counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
        shared
            .counters
            .queue_hist
            .observe(depth_before.saturating_sub(1) as u64);
        let response = handle_connection(shared, &mut conn, enqueued);
        if write_frame(&mut conn, response.as_bytes()).is_err() {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        shared
            .counters
            .latency
            .observe(enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
}

/// Reads, parses and dispatches one request; every outcome is a response
/// string (the server never drops a connection silently).
fn handle_connection(shared: &Shared, conn: &mut UnixStream, enqueued: Instant) -> String {
    let payload = match read_frame(conn) {
        Ok(p) => p,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(&format!("bad frame: {e}"));
        }
    };
    let request = match parse_request(&payload) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return error_response(&e);
        }
    };
    match request {
        Request::Ping => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"pong\":true}".to_string()
        }
        Request::Stats => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            stats_response(shared)
        }
        Request::Metrics { deterministic } => {
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            metrics_response(shared, deterministic)
        }
        Request::Sleep(ms) => {
            // Diagnostic: lets tests pin a worker deterministically to
            // exercise the busy path. Capped at parse time.
            std::thread::sleep(std::time::Duration::from_millis(ms));
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"slept\":true}".to_string()
        }
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            // Wake the acceptor out of its blocking accept().
            let _ = UnixStream::connect(&shared.config.socket);
            shared.counters.served.fetch_add(1, Ordering::Relaxed);
            "{\"ok\":true,\"shutting_down\":true}".to_string()
        }
        Request::Optimize(req) => match handle_optimize(shared, &req, enqueued) {
            Ok(response) => {
                shared.counters.served.fetch_add(1, Ordering::Relaxed);
                response
            }
            Err(e) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                error_response(&e)
            }
        },
    }
}

fn stats_response(shared: &Shared) -> String {
    let c = &shared.counters;
    let cache = match &shared.config.cache {
        None => "null".to_string(),
        Some(cache) => {
            let s = cache.stats();
            format!(
                "{{\"hits\":{},\"misses\":{},\"stores\":{},\"evictions\":{},\
                 \"corrupt\":{},\"disk_hits\":{},\"entries\":{},\"bytes\":{}}}",
                s.hits, s.misses, s.stores, s.evictions, s.corrupt, s.disk_hits, s.entries, s.bytes,
            )
        }
    };
    format!(
        "{{\"ok\":true,\"accepted\":{},\"served\":{},\"shed\":{},\"errors\":{},\
         \"queue_depth\":{},\"workers\":{},\"queue\":{},\"cache\":{cache}}}",
        c.accepted.load(Ordering::Relaxed),
        c.served.load(Ordering::Relaxed),
        c.shed.load(Ordering::Relaxed),
        c.errors.load(Ordering::Relaxed),
        c.queue_depth.load(Ordering::SeqCst),
        shared.config.workers.max(1),
        shared.config.queue,
    )
}

/// Renders the Prometheus-style text exposition and wraps it in the JSON
/// reply. `deterministic` zeroes every sampled value (histogram buckets,
/// sums, counts) while keeping the full line set, so tests can compare
/// the exposition byte-for-byte.
fn metrics_response(shared: &Shared, deterministic: bool) -> String {
    use std::fmt::Write as _;
    let c = &shared.counters;
    let mut text = String::new();
    let _ = writeln!(text, "# TYPE abcdd_requests_total counter");
    for (outcome, n) in [
        ("accepted", c.accepted.load(Ordering::Relaxed)),
        ("served", c.served.load(Ordering::Relaxed)),
        ("shed", c.shed.load(Ordering::Relaxed)),
        ("errors", c.errors.load(Ordering::Relaxed)),
    ] {
        let _ = writeln!(text, "abcdd_requests_total{{outcome=\"{outcome}\"}} {n}");
    }
    let _ = writeln!(text, "# TYPE abcdd_queue_depth gauge");
    let _ = writeln!(
        text,
        "abcdd_queue_depth {}",
        c.queue_depth.load(Ordering::SeqCst)
    );
    let _ = writeln!(text, "# TYPE abcdd_workers gauge");
    let _ = writeln!(text, "abcdd_workers {}", shared.config.workers.max(1));
    if let Some(cache) = &shared.config.cache {
        let s = cache.stats();
        let _ = writeln!(text, "# TYPE abcdd_cache_events_total counter");
        for (event, n) in [
            ("hits", s.hits),
            ("misses", s.misses),
            ("stores", s.stores),
            ("evictions", s.evictions),
            ("corrupt", s.corrupt),
            ("disk_hits", s.disk_hits),
        ] {
            let _ = writeln!(text, "abcdd_cache_events_total{{event=\"{event}\"}} {n}");
        }
        let _ = writeln!(text, "# TYPE abcdd_cache_entries gauge");
        let _ = writeln!(text, "abcdd_cache_entries {}", s.entries);
        let _ = writeln!(text, "# TYPE abcdd_cache_bytes gauge");
        let _ = writeln!(text, "abcdd_cache_bytes {}", s.bytes);
    }
    c.latency
        .exposition("abcdd_request_latency_us", &mut text, deterministic);
    c.queue_hist
        .exposition("abcdd_queue_depth_at_dequeue", &mut text, deterministic);
    format!(
        "{{\"ok\":true,\"exposition\":\"{}\"}}",
        crate::json::escape(&text)
    )
}

fn handle_optimize(
    shared: &Shared,
    req: &OptimizeRequest,
    enqueued: Instant,
) -> Result<String, String> {
    let mut module: Module = match (&req.source, &req.ir) {
        (Some(src), None) => compile(src).map_err(|e| format!("compile: {e}"))?,
        (None, Some(ir)) => abcd_ir::parse_module(ir).map_err(|e| format!("parse: {e}"))?,
        _ => unreachable!("validated by parse_request"),
    };
    let mut optimizer = Optimizer::with_options(req.options)
        .with_threads(shared.config.jobs)
        .with_trace(req.trace);
    if let Some(cache) = &shared.config.cache {
        optimizer = optimizer.with_cache(Arc::clone(cache));
    }
    let threads = optimizer.threads();
    let started = Instant::now();
    let report = optimizer.optimize_module(&mut module, req.profile.as_ref());
    let wall = started.elapsed();
    let ir = module.to_string();
    let trace = if req.trace {
        let mut doc = abcd::module_trace_jsonl(&report, threads, req.deterministic_metrics);
        doc.push_str(&abcd::request_span_jsonl(
            shared.counters.queue_depth.load(Ordering::SeqCst),
            enqueued.elapsed(),
            req.deterministic_metrics,
        ));
        Some(doc)
    } else {
        None
    };
    let metrics = if req.metrics {
        let mut run = RunInfo::new(threads, wall);
        if let Some(cache) = &shared.config.cache {
            run = run.with_cache(cache.stats());
        }
        run.queue_depth = Some(shared.counters.queue_depth.load(Ordering::SeqCst));
        run.request_latency = Some(enqueued.elapsed());
        if req.deterministic_metrics {
            run = run.deterministic();
        }
        Some(module_metrics_json(&report, run))
    } else {
        None
    };
    Ok(ok_response(
        &ir,
        &report,
        trace.as_deref(),
        metrics.as_deref(),
    ))
}
