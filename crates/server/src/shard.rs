//! The sharded run queue: N shards, each with a bounded FIFO of admitted
//! connections, work-stealing between them, and queue-position
//! backpressure when every shard is full.
//!
//! # Admission
//!
//! The acceptor places each connection on the *least-loaded* shard
//! (queued + in-flight); ties break toward lower shard ids, so placement
//! is deterministic given load. When every shard is at capacity the
//! connection is not silently shed: it receives a **queue-position
//! reply** — `{"ok":false,"busy":true,"queued":P,"retry_after_ms":...}` —
//! where `P` is the backlog position the request would have held (total
//! queued + in-flight + 1). Clients treat it exactly like the old `busy`
//! reply (retry with backoff, hint as floor) but can scale their patience
//! with `queued` instead of guessing.
//!
//! # Stealing
//!
//! A worker that finds its own shard's queue empty steals the *oldest*
//! job from the deepest other shard. Stealing the queue front (not the
//! back, as in fork-join work stealing) is deliberate: jobs here are
//! independent requests with latency SLOs, so anti-starvation beats
//! locality — the oldest waiting request is exactly the one a freed-up
//! worker should rescue. Lock discipline: a worker never holds two queue
//! locks (it drops its own before probing siblings), so steal paths
//! cannot deadlock.

use crate::transport::Conn;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// One admitted connection, waiting for a worker.
#[derive(Debug)]
pub(crate) struct Job {
    /// The connection; its request frame is still unread.
    pub conn: Conn,
    /// Admission time — deadlines and latency are measured from here.
    pub enqueued: Instant,
}

/// Locks a mutex, riding through poison (see `server::lock_tolerant`).
fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-shard state: the bounded queue plus counters cheap enough to read
/// without the queue lock (gauges in `stats` / the exposition).
pub(crate) struct Shard {
    queue: Mutex<VecDeque<Job>>,
    /// Workers of this shard park here between jobs.
    available: Condvar,
    /// Mirror of `queue.len()`, readable without the lock.
    pub depth: AtomicUsize,
    /// Requests currently being processed by this shard's workers
    /// (including stolen ones — `busy` tracks the worker, not the job's
    /// home shard).
    pub busy: AtomicUsize,
    /// Jobs admitted to this shard.
    pub enqueued_total: AtomicU64,
    /// Jobs other shards' workers stole out of this queue.
    pub stolen_from: AtomicU64,
}

/// What `next_job` produced.
pub(crate) enum Dequeue {
    /// A job, plus whether it was stolen from another shard.
    Job(Job, bool),
    /// Nothing to do yet; the worker should re-check its detach flag.
    TimedOut,
    /// Shutdown is in progress and every queue is empty: exit.
    Drained,
}

/// The fixed set of shards behind one server.
pub(crate) struct ShardSet {
    shards: Vec<Shard>,
    /// Per-shard queue capacity. `0` is rendezvous admission: a job is
    /// admitted only when one of the shard's workers is idle.
    capacity: usize,
    workers_per_shard: usize,
    /// Total queue-position (backpressure) replies issued.
    pub queued_replies: AtomicU64,
    /// Total jobs stolen across shards.
    pub steals: AtomicU64,
}

impl ShardSet {
    pub fn new(shards: usize, capacity: usize, workers_per_shard: usize) -> ShardSet {
        ShardSet {
            shards: (0..shards.max(1))
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    available: Condvar::new(),
                    depth: AtomicUsize::new(0),
                    busy: AtomicUsize::new(0),
                    enqueued_total: AtomicU64::new(0),
                    stolen_from: AtomicU64::new(0),
                })
                .collect(),
            capacity,
            workers_per_shard: workers_per_shard.max(1),
            queued_replies: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, id: usize) -> &Shard {
        &self.shards[id]
    }

    /// Queued connections across all shards (the admission gauge).
    pub fn total_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::SeqCst))
            .sum()
    }

    /// Queued + in-flight across all shards.
    pub fn total_load(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::SeqCst) + s.busy.load(Ordering::SeqCst))
            .sum()
    }

    /// The load of shard `id` as the admission policy sees it.
    fn load(&self, id: usize) -> usize {
        let s = &self.shards[id];
        s.depth.load(Ordering::SeqCst) + s.busy.load(Ordering::SeqCst)
    }

    /// True when shard `id` cannot admit another job right now.
    fn full(&self, id: usize) -> bool {
        let s = &self.shards[id];
        if self.capacity == 0 {
            // Rendezvous: admit only toward an idle worker.
            s.depth.load(Ordering::SeqCst) > 0
                || s.busy.load(Ordering::SeqCst) >= self.workers_per_shard
        } else {
            s.depth.load(Ordering::SeqCst) >= self.capacity
        }
    }

    /// Admits `job` to the least-loaded shard with room, or reports the
    /// backlog position for the queue-position reply.
    pub fn admit(&self, job: Job) -> Result<usize, (Job, usize)> {
        let mut best: Option<usize> = None;
        for id in 0..self.shards.len() {
            if self.full(id) {
                continue;
            }
            match best {
                Some(b) if self.load(b) <= self.load(id) => {}
                _ => best = Some(id),
            }
        }
        match best {
            Some(id) => {
                let shard = &self.shards[id];
                let mut queue = lock_tolerant(&shard.queue);
                queue.push_back(job);
                shard.depth.store(queue.len(), Ordering::SeqCst);
                shard.enqueued_total.fetch_add(1, Ordering::Relaxed);
                drop(queue);
                shard.available.notify_one();
                // A backlog on one shard while another idles resolves at
                // steal time; nudge a sibling so the wait is a wakeup,
                // not a poll timeout.
                if self.shards.len() > 1 && self.shards[id].depth.load(Ordering::SeqCst) > 1 {
                    self.shards[(id + 1) % self.shards.len()]
                        .available
                        .notify_one();
                }
                Ok(id)
            }
            None => {
                let position = self.total_load() + 1;
                self.queued_replies.fetch_add(1, Ordering::Relaxed);
                Err((job, position))
            }
        }
    }

    /// Produces the next job for a worker of shard `id`: its own queue
    /// first, then a steal from the deepest sibling, else a bounded park.
    /// On success the shard's `busy` gauge is already incremented; pair
    /// with [`ShardSet::finish`]. `drain` is the caller's shutdown
    /// verdict (stop requested *and* no acceptor can admit anymore):
    /// when it holds and every queue is empty, the worker should exit.
    pub fn next_job(&self, id: usize, drain: bool) -> Dequeue {
        let own = &self.shards[id];
        {
            let mut queue = lock_tolerant(&own.queue);
            if let Some(job) = queue.pop_front() {
                own.depth.store(queue.len(), Ordering::SeqCst);
                drop(queue);
                own.busy.fetch_add(1, Ordering::SeqCst);
                return Dequeue::Job(job, false);
            }
        }
        // Own queue empty: steal the oldest job from the deepest sibling.
        if self.shards.len() > 1 {
            let victim = (0..self.shards.len())
                .filter(|&v| v != id)
                .max_by_key(|&v| self.shards[v].depth.load(Ordering::SeqCst));
            if let Some(v) = victim {
                if self.shards[v].depth.load(Ordering::SeqCst) > 0 {
                    let shard = &self.shards[v];
                    let mut queue = lock_tolerant(&shard.queue);
                    if let Some(job) = queue.pop_front() {
                        shard.depth.store(queue.len(), Ordering::SeqCst);
                        drop(queue);
                        shard.stolen_from.fetch_add(1, Ordering::Relaxed);
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        own.busy.fetch_add(1, Ordering::SeqCst);
                        return Dequeue::Job(job, true);
                    }
                }
            }
        }
        if drain && self.total_depth() == 0 {
            return Dequeue::Drained;
        }
        // Park until a push (or a steal nudge) arrives; the timeout keeps
        // detach checks and drain detection responsive.
        let queue = lock_tolerant(&own.queue);
        if queue.is_empty() {
            let _ = own.available.wait_timeout(queue, Duration::from_millis(25));
        }
        Dequeue::TimedOut
    }

    /// Marks a worker of shard `id` idle again after a job.
    pub fn finish(&self, id: usize) {
        self.shards[id].busy.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes every parked worker (shutdown, so drains finish promptly).
    pub fn wake_all(&self) {
        for shard in &self.shards {
            shard.available.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    fn job() -> Job {
        let (a, _b) = UnixStream::pair().expect("socketpair");
        // Leak the peer so the conn stays connected for the test's scope.
        std::mem::forget(_b);
        Job {
            conn: Conn::Uds(a),
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn admission_balances_and_backpressures_with_position() {
        let set = ShardSet::new(2, 1, 1);
        assert_eq!(set.admit(job()).unwrap(), 0);
        assert_eq!(set.admit(job()).unwrap(), 1, "least-loaded placement");
        match set.admit(job()) {
            Err((_, position)) => assert_eq!(position, 3, "backlog position"),
            Ok(id) => panic!("should be full, admitted to {id}"),
        }
        assert_eq!(set.queued_replies.load(Ordering::Relaxed), 1);
        assert_eq!(set.total_depth(), 2);
    }

    #[test]
    fn workers_steal_the_oldest_job_from_the_deepest_sibling() {
        let set = ShardSet::new(2, 8, 1);
        for _ in 0..3 {
            set.admit(job()).unwrap();
        }
        // Shard 1 holds one job, shard 0 holds two; a shard-1 worker
        // first drains its own queue, then steals from shard 0.
        assert!(matches!(set.next_job(1, false), Dequeue::Job(_, false)));
        assert!(matches!(set.next_job(1, false), Dequeue::Job(_, true)));
        assert_eq!(set.steals.load(Ordering::Relaxed), 1);
        assert_eq!(set.shard(0).stolen_from.load(Ordering::Relaxed), 1);
        assert!(matches!(set.next_job(0, false), Dequeue::Job(_, false)));
        // Empty everywhere + drain requested = drained.
        assert!(matches!(set.next_job(0, true), Dequeue::Drained));
    }

    #[test]
    fn rendezvous_capacity_admits_only_toward_idle_workers() {
        let set = ShardSet::new(1, 0, 1);
        set.admit(job()).unwrap();
        let Dequeue::Job(_job, _) = set.next_job(0, false) else {
            panic!("job expected");
        };
        // Worker busy, queue empty: rendezvous refuses the next one.
        assert!(set.admit(job()).is_err());
        set.finish(0);
        assert!(set.admit(job()).is_ok());
    }
}
