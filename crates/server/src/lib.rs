//! `abcd-server` — the `abcdd` persistent optimization service.
//!
//! ABCD is demand-driven and therefore cheap per check, but a batch `mjc`
//! invocation still pays compile + e-SSA + analysis for every function on
//! every run. This crate keeps the optimizer resident: a daemon (`abcdd`)
//! listens on a Unix-domain socket, optimizes modules on request, and
//! shares one content-addressed [`abcd::AnalysisCache`] across requests so
//! an edit to one function recompiles *that function* (plus interprocedural
//! dependents, via summary fingerprints) instead of the module.
//!
//! - [`proto`] — framing, request/response schema (v1 single + v2
//!   pipelined batches), deadline + retry contract;
//! - [`transport`] — UDS and TCP listeners/connections behind one type;
//! - [`server`] — per-listener acceptors / sharded work-stealing run
//!   queues / supervised worker pools / graceful drain, with optional
//!   seeded fault injection;
//! - [`client`] — a blocking client used by `mjc client`, `loadgen`, and
//!   the tests;
//! - [`json`] — the dependency-free JSON reader behind both.
//!
//! Differential guarantee: a served module is byte-identical to one-shot
//! `mjc dump --stage opt` output for the same input and options, warm or
//! cold cache (the driver canonicalizes IR as its final stage precisely so
//! this holds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod proto;
pub mod server;
mod shard;
pub mod transport;

pub use client::{
    metrics, metrics_at, optimize, optimize_at, optimize_batch_at, ping, ping_at, roundtrip,
    roundtrip_at, roundtrip_timeout, shutdown, shutdown_at, stats, stats_at, BatchItem,
    CallOptions, Optimized, Reply, RetryPolicy,
};
pub use server::{start, ServerConfig, ServerHandle};
pub use transport::{Endpoint, ListenAddr};
