//! A minimal, dependency-free JSON reader for the wire protocol.
//!
//! The server's *output* is hand-assembled (like `abcd::metrics`), but
//! requests arrive as arbitrary client-formatted JSON and need a real
//! parser. This one supports the full value grammar with strict errors;
//! numbers are kept as `i64` when integral (counts, ids) and `f64`
//! otherwise.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integral number.
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not semantic; a sorted map keeps lookups
    /// and re-emission deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` as one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` (rejects negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `usize` (rejects negatives).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {}, found `{}`",
            ch as char,
            pos,
            bytes.get(*pos).map(|&b| b as char).unwrap_or('∅')
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Json::Int(n));
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let ch = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("lone high surrogate".to_string());
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err("bad low surrogate".to_string());
                            }
                            let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(code).ok_or("bad surrogate pair")?
                        } else {
                            char::from_u32(hi).ok_or("bad \\u escape")?
                        };
                        out.push(ch);
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("raw control character in string".to_string()),
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let text = std::str::from_utf8(&bytes[start..end]).map_err(|_| "bad \\u escape")?;
    let n = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))?;
    *pos = end - 1;
    Ok(n)
}

/// Escapes `s` as a JSON string literal body. Delegates to the one shared
/// escaper ([`abcd::json_escape`]) so every emitter in the workspace agrees
/// with this parser, byte for byte.
pub fn escape(s: &str) -> String {
    abcd::json_escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let j = Json::parse(r#"{"a":[1,-2,3.5,null,true],"b":{"c":"x\ny"},"d":false}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[0], Json::Int(1));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[1], Json::Int(-2));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[2], Json::Float(3.5));
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(j.get("d").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "quote \" slash \\ newline \n tab \t ctrl \u{1}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap().as_str(),
            Some("é😀")
        );
    }
}
