//! A blocking client for the `abcdd` wire protocol.
//!
//! One call = one connection = one frame each way, mirroring the server's
//! admission model. The only non-terminal failure is `busy`, surfaced as
//! [`Reply::Busy`] so callers can implement the documented retry contract.

use crate::json::Json;
use crate::proto::{optimize_request_json, read_frame, write_frame};
use abcd::OptimizerOptions;
use abcd_vm::Profile;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A parsed server reply.
#[derive(Debug)]
pub enum Reply {
    /// The request succeeded; the parsed response document plus the raw
    /// reply text (the `metrics` field must be extracted verbatim — a
    /// re-serialization would not be byte-comparable with batch `mjc`).
    Ok(Json, String),
    /// The admission queue was full; retry after the given delay.
    Busy {
        /// Advisory back-off before resending the identical request.
        retry_after_ms: u64,
    },
    /// A terminal, structured error.
    Err(String),
}

/// The successful payload of an `optimize` request.
#[derive(Debug)]
pub struct Optimized {
    /// The optimized module, printed as canonical textual IR.
    pub ir: String,
    /// Static checks seen / fully removed / hoisted.
    pub checks: (u64, u64, u64),
    /// Total and degraded incident counts.
    pub incidents: (u64, u64),
    /// Functions replayed from the analysis cache.
    pub functions_from_cache: u64,
    /// The `abcd-metrics/5` document, verbatim as the server emitted it,
    /// when requested.
    pub metrics: Option<String>,
    /// The `abcd-trace/2` JSONL document, when requested.
    pub trace: Option<String>,
}

/// Sends one raw request frame and returns the parsed reply.
pub fn roundtrip(socket: &Path, request: &str) -> Result<Reply, String> {
    let mut conn =
        UnixStream::connect(socket).map_err(|e| format!("connect {}: {e}", socket.display()))?;
    // A shed connection is answered and closed without the request being
    // read, so the send can fail with EPIPE while a perfectly good `busy`
    // frame sits in our receive buffer — always try the read.
    let sent = write_frame(&mut conn, request.as_bytes());
    let payload = match (read_frame(&mut conn), sent) {
        (Ok(p), _) => p,
        (Err(_), Err(e)) => return Err(format!("send: {e}")),
        (Err(e), Ok(())) => return Err(format!("receive: {e}")),
    };
    let text = std::str::from_utf8(&payload).map_err(|_| "reply is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("bad reply: {e}"))?;
    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(Reply::Ok(doc, text.to_string()));
    }
    if doc.get("busy").and_then(Json::as_bool) == Some(true) {
        return Ok(Reply::Busy {
            retry_after_ms: doc
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(25),
        });
    }
    Ok(Reply::Err(
        doc.get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed error reply")
            .to_string(),
    ))
}

/// Optimizes a module remotely. Retries `busy` replies up to `retries`
/// times with the server-advised back-off; any other failure is terminal.
#[allow(clippy::too_many_arguments)]
pub fn optimize(
    socket: &Path,
    source_or_ir: (&str, bool),
    options: &OptimizerOptions,
    profile: Option<&Profile>,
    metrics: bool,
    deterministic_metrics: bool,
    trace: bool,
    retries: u32,
) -> Result<Optimized, String> {
    let request = optimize_request_json(
        source_or_ir,
        options,
        profile,
        metrics,
        deterministic_metrics,
        trace,
    );
    let mut attempt = 0;
    loop {
        match roundtrip(socket, &request)? {
            Reply::Ok(doc, raw) => {
                let n = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
                return Ok(Optimized {
                    ir: doc
                        .get("ir")
                        .and_then(Json::as_str)
                        .ok_or("reply missing `ir`")?
                        .to_string(),
                    checks: (n("checks_total"), n("removed_fully"), n("hoisted")),
                    incidents: (n("incidents"), n("degraded_incidents")),
                    functions_from_cache: n("functions_from_cache"),
                    metrics: extract_metrics(&doc, &raw),
                    trace: doc.get("trace").and_then(Json::as_str).map(str::to_string),
                });
            }
            Reply::Busy { retry_after_ms } => {
                if attempt >= retries {
                    return Err(format!("server busy after {attempt} retries"));
                }
                attempt += 1;
                std::thread::sleep(std::time::Duration::from_millis(retry_after_ms));
            }
            Reply::Err(e) => return Err(e),
        }
    }
}

/// Slices the verbatim `metrics` field out of a raw success reply. The
/// server's `ok_response` always emits `"metrics":…}` as the final field,
/// so the document between that marker and the closing brace is exactly
/// what `module_metrics_json` produced.
fn extract_metrics(doc: &Json, raw: &str) -> Option<String> {
    if matches!(doc.get("metrics"), None | Some(Json::Null)) {
        return None;
    }
    let start = raw.rfind(",\"metrics\":")? + ",\"metrics\":".len();
    let end = raw.len().checked_sub(1)?;
    Some(raw.get(start..end)?.to_string())
}

/// Sends a `ping`; true when a live server answered.
pub fn ping(socket: &Path) -> bool {
    matches!(roundtrip(socket, "{\"cmd\":\"ping\"}"), Ok(Reply::Ok(..)))
}

/// Sends a `shutdown` request.
pub fn shutdown(socket: &Path) -> Result<(), String> {
    match roundtrip(socket, "{\"cmd\":\"shutdown\"}")? {
        Reply::Ok(..) => Ok(()),
        Reply::Busy { .. } => Err("server busy; shutdown not accepted".to_string()),
        Reply::Err(e) => Err(e),
    }
}

/// Sends a `stats` request and returns the raw document.
pub fn stats(socket: &Path) -> Result<Json, String> {
    match roundtrip(socket, "{\"cmd\":\"stats\"}")? {
        Reply::Ok(doc, _) => Ok(doc),
        Reply::Busy { .. } => Err("server busy".to_string()),
        Reply::Err(e) => Err(e),
    }
}

/// Sends a `metrics` request and returns the Prometheus-style text
/// exposition, unescaped and ready to print or scrape.
pub fn metrics(socket: &Path, deterministic: bool) -> Result<String, String> {
    let request = format!("{{\"cmd\":\"metrics\",\"deterministic\":{deterministic}}}");
    match roundtrip(socket, &request)? {
        Reply::Ok(doc, _) => doc
            .get("exposition")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "reply missing `exposition`".to_string()),
        Reply::Busy { .. } => Err("server busy".to_string()),
        Reply::Err(e) => Err(e),
    }
}
