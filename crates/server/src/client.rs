//! A blocking client for the `abcdd` wire protocol, over UDS or TCP.
//!
//! One call = one connection = one request frame, mirroring the server's
//! admission model; a protocol-v2 batch call reads its N streamed reply
//! frames back on the same connection. The only non-terminal failure is
//! `busy` — including the sharded server's queue-position replies —
//! surfaced as [`Reply::Busy`] so callers can implement the documented
//! retry contract; [`RetryPolicy`] implements it (exponential backoff with
//! jitter, floored by the server's adaptive hint, bounded by an attempt
//! cap and an overall deadline) for callers that just want the right
//! behavior.
//!
//! The `&Path` entry points ([`optimize`], [`ping`], [`stats`], …) are the
//! original UDS API and remain unchanged; each has an `_at` twin taking an
//! [`Endpoint`] that also speaks TCP.

use crate::json::Json;
use crate::proto::{batch_request_json, optimize_request_json, read_frame, write_frame};
use crate::transport::{Conn, Endpoint};
use abcd::OptimizerOptions;
use abcd_vm::Profile;
use std::path::Path;
use std::time::{Duration, Instant};

/// A parsed server reply.
#[derive(Debug)]
pub enum Reply {
    /// The request succeeded; the parsed response document plus the raw
    /// reply text (the `metrics` field must be extracted verbatim — a
    /// re-serialization would not be byte-comparable with batch `mjc`).
    Ok(Json, String),
    /// Every shard's admission queue was full; retry after the delay.
    Busy {
        /// Advisory back-off before resending the identical request —
        /// adaptive: the server scales it with the backlog it shed at.
        retry_after_ms: u64,
        /// Queue position the request would have held (sharded servers
        /// only): patience can scale with the backlog instead of being
        /// guessed. `None` from pre-shard `busy` replies.
        queued: Option<u64>,
    },
    /// A terminal, structured error.
    Err(String),
}

/// Per-request observation knobs for [`optimize`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CallOptions {
    /// Attach the `abcd-metrics/6` blob to the reply.
    pub metrics: bool,
    /// Zero all durations in the metrics/trace blobs.
    pub deterministic_metrics: bool,
    /// Attach the `abcd-trace/3` JSONL document to the reply.
    pub trace: bool,
    /// Per-request deadline, in milliseconds from server admission;
    /// `None` inherits the server's default. Tripping it fails open.
    pub deadline_ms: Option<u64>,
}

/// How [`optimize`] retries `busy` replies and bounds its own time.
///
/// Each busy reply sleeps `max(server_hint, jittered_backoff)` where the
/// backoff doubles from [`base_ms`](RetryPolicy::base_ms) up to
/// [`cap_ms`](RetryPolicy::cap_ms) and the jitter draws uniformly from
/// `[delay/2, delay]` — deterministic per ([`seed`](RetryPolicy::seed),
/// attempt), so tests can replay a schedule. The overall deadline covers
/// everything: connects, frames, and the sleeps between attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// First backoff delay.
    pub base_ms: u64,
    /// Ceiling on the exponential backoff component.
    pub cap_ms: u64,
    /// Overall client-side deadline across all attempts and sleeps.
    pub overall_ms: Option<u64>,
    /// Socket read/write timeout per connection (per-frame bound).
    pub io_timeout_ms: Option<u64>,
    /// Jitter seed; same seed + same attempt = same sleep.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_ms: 5,
            cap_ms: 250,
            overall_ms: None,
            io_timeout_ms: None,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy bounded end-to-end by `timeout_ms`: it is both the
    /// per-frame socket timeout and the overall deadline (`mjc client
    /// --timeout` maps here).
    pub fn with_timeout_ms(timeout_ms: u64) -> RetryPolicy {
        RetryPolicy {
            overall_ms: Some(timeout_ms),
            io_timeout_ms: Some(timeout_ms),
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retry number `attempt` (1-based), given the
    /// server's advisory hint.
    fn backoff_ms(&self, attempt: u32, server_hint_ms: u64) -> u64 {
        let doubled = self
            .base_ms
            .saturating_mul(1u64 << u64::from(attempt.saturating_sub(1)).min(16));
        let delay = doubled.min(self.cap_ms);
        jitter(self.seed, attempt, delay).max(server_hint_ms)
    }
}

/// Deterministic jitter: uniform in `[delay/2, delay]` via SplitMix64 on
/// `(seed, attempt)`.
fn jitter(seed: u64, attempt: u32, delay: u64) -> u64 {
    if delay <= 1 {
        return delay;
    }
    let mut z = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let floor = delay / 2;
    floor + z % (delay - floor + 1)
}

/// The successful payload of an `optimize` request.
#[derive(Debug)]
pub struct Optimized {
    /// The optimized module, printed as canonical textual IR.
    pub ir: String,
    /// Static checks seen / fully removed / hoisted.
    pub checks: (u64, u64, u64),
    /// Total and degraded incident counts.
    pub incidents: (u64, u64),
    /// Functions replayed from the analysis cache.
    pub functions_from_cache: u64,
    /// True when the server blew the deadline and failed open: `ir` is
    /// the compiled but unoptimized module, every check kept.
    pub deadline_exceeded: bool,
    /// The `abcd-metrics/6` document, verbatim as the server emitted it,
    /// when requested.
    pub metrics: Option<String>,
    /// The `abcd-trace/3` JSONL document, when requested.
    pub trace: Option<String>,
}

/// Parses one reply frame into a [`Reply`].
fn parse_reply(payload: &[u8]) -> Result<Reply, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "reply is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("bad reply: {e}"))?;
    if doc.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(Reply::Ok(doc, text.to_string()));
    }
    if doc.get("busy").and_then(Json::as_bool) == Some(true) {
        return Ok(Reply::Busy {
            retry_after_ms: doc
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(25),
            queued: doc.get("queued").and_then(Json::as_u64),
        });
    }
    Ok(Reply::Err(
        doc.get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed error reply")
            .to_string(),
    ))
}

/// Dials `endpoint` with the given IO timeout applied to both directions.
fn dial(endpoint: &Endpoint, io_timeout: Option<Duration>) -> Result<Conn, String> {
    let conn = endpoint
        .connect()
        .map_err(|e| format!("connect {}: {e}", endpoint.describe()))?;
    if let Some(t) = io_timeout {
        let t = t.max(Duration::from_millis(1)); // zero would disable, not expire
        conn.set_read_timeout(Some(t))
            .map_err(|e| format!("set read timeout: {e}"))?;
        conn.set_write_timeout(Some(t))
            .map_err(|e| format!("set write timeout: {e}"))?;
    }
    Ok(conn)
}

/// Sends one raw request frame and returns the parsed reply.
pub fn roundtrip(socket: &Path, request: &str) -> Result<Reply, String> {
    roundtrip_timeout(socket, request, None)
}

/// [`roundtrip`] with a socket read/write timeout bounding each frame.
pub fn roundtrip_timeout(
    socket: &Path,
    request: &str,
    io_timeout: Option<Duration>,
) -> Result<Reply, String> {
    roundtrip_at(&Endpoint::uds(socket), request, io_timeout)
}

/// Sends one raw request frame to `endpoint` (UDS or TCP) and returns the
/// parsed reply.
pub fn roundtrip_at(
    endpoint: &Endpoint,
    request: &str,
    io_timeout: Option<Duration>,
) -> Result<Reply, String> {
    let mut conn = dial(endpoint, io_timeout)?;
    // A shed connection is answered and closed without the request being
    // read, so the send can fail with EPIPE while a perfectly good `busy`
    // frame sits in our receive buffer — always try the read.
    let sent = write_frame(&mut conn, request.as_bytes());
    let payload = match (read_frame(&mut conn), sent) {
        (Ok(p), _) => p,
        (Err(_), Err(e)) => return Err(format!("send: {e}")),
        (Err(e), Ok(())) => return Err(format!("receive: {e}")),
    };
    parse_reply(&payload)
}

/// Optimizes a module remotely over UDS, retrying `busy` replies per
/// `retry`; any other failure is terminal.
pub fn optimize(
    socket: &Path,
    source_or_ir: (&str, bool),
    options: &OptimizerOptions,
    profile: Option<&Profile>,
    call: &CallOptions,
    retry: &RetryPolicy,
) -> Result<Optimized, String> {
    optimize_at(
        &Endpoint::uds(socket),
        source_or_ir,
        options,
        profile,
        call,
        retry,
    )
}

/// [`optimize`] against any [`Endpoint`] (UDS or TCP).
pub fn optimize_at(
    endpoint: &Endpoint,
    source_or_ir: (&str, bool),
    options: &OptimizerOptions,
    profile: Option<&Profile>,
    call: &CallOptions,
    retry: &RetryPolicy,
) -> Result<Optimized, String> {
    let request = optimize_request_json(
        source_or_ir,
        options,
        profile,
        call.metrics,
        call.deterministic_metrics,
        call.trace,
        call.deadline_ms,
    );
    let (doc, raw) = call_with_retry(endpoint, &request, 1, retry)?
        .into_iter()
        .next()
        .ok_or("no reply")??;
    into_optimized(&doc, &raw)
}

/// One element of a protocol-v2 batch: `((source_or_ir, is_ir), optimizer
/// options, optional profile, per-call options)` — the same arguments
/// [`optimize_at`] takes for a single request.
pub type BatchItem<'a> = (
    (&'a str, bool),
    &'a OptimizerOptions,
    Option<&'a Profile>,
    CallOptions,
);

/// Sends N optimize requests as **one pipelined protocol-v2 frame** and
/// reads the N streamed replies back in request order. A queue-position
/// (`busy`) reply retries the whole batch — admission is all-or-nothing,
/// so no element is ever processed twice. Per-element failures (parse
/// errors, etc.) come back as `Err` in that element's slot; transport
/// failures mid-stream are terminal for the remaining elements.
pub fn optimize_batch_at(
    endpoint: &Endpoint,
    items: &[BatchItem<'_>],
    retry: &RetryPolicy,
) -> Result<Vec<Result<Optimized, String>>, String> {
    if items.is_empty() {
        return Err("empty batch".to_string());
    }
    let bodies: Vec<String> = items
        .iter()
        .map(|(source_or_ir, options, profile, call)| {
            optimize_request_json(
                *source_or_ir,
                options,
                *profile,
                call.metrics,
                call.deterministic_metrics,
                call.trace,
                call.deadline_ms,
            )
        })
        .collect();
    let request = batch_request_json(&bodies);
    let replies = call_with_retry(endpoint, &request, items.len(), retry)?;
    Ok(replies
        .into_iter()
        .map(|reply| reply.and_then(|(doc, raw)| into_optimized(&doc, &raw)))
        .collect())
}

/// One call with the busy-retry loop: sends `request`, expects `expect`
/// reply frames (1 for v1, N for a batch). A `busy`/queued reply —
/// always the sole frame on its connection — sleeps and retries the
/// identical request; `Ok` carries each frame's parsed document and raw
/// text, or the per-frame error.
#[allow(clippy::type_complexity)]
fn call_with_retry(
    endpoint: &Endpoint,
    request: &str,
    expect: usize,
    retry: &RetryPolicy,
) -> Result<Vec<Result<(Json, String), String>>, String> {
    let started = Instant::now();
    let remaining = |started: Instant| -> Result<Option<Duration>, String> {
        match retry.overall_ms {
            None => Ok(None),
            Some(total) => {
                let budget = Duration::from_millis(total);
                let elapsed = started.elapsed();
                if elapsed >= budget {
                    Err(format!("client deadline of {total} ms exceeded"))
                } else {
                    Ok(Some(budget - elapsed))
                }
            }
        }
    };
    let mut attempt: u32 = 0;
    'attempts: loop {
        let left = remaining(started)?;
        // Each frame gets min(per-frame timeout, what's left of the
        // overall budget), so a single slow frame cannot overrun it.
        let io = match (retry.io_timeout_ms.map(Duration::from_millis), left) {
            (Some(io), Some(left)) => Some(io.min(left)),
            (Some(io), None) => Some(io),
            (None, left) => left,
        };
        let mut conn = dial(endpoint, io)?;
        let sent = write_frame(&mut conn, request.as_bytes());
        let mut replies = Vec::with_capacity(expect);
        for i in 0..expect {
            let payload = match (read_frame(&mut conn), &sent) {
                (Ok(p), _) => p,
                (Err(_), Err(e)) if i == 0 => return Err(format!("send: {e}")),
                (Err(e), _) => {
                    if i == 0 {
                        return Err(format!("receive: {e}"));
                    }
                    // Mid-stream transport failure: the remaining
                    // elements are undeliverable.
                    for _ in i..expect {
                        replies.push(Err(format!("receive: {e}")));
                    }
                    return Ok(replies);
                }
            };
            match parse_reply(&payload)? {
                Reply::Ok(doc, raw) => replies.push(Ok((doc, raw))),
                Reply::Err(e) => replies.push(Err(e)),
                Reply::Busy { retry_after_ms, .. } => {
                    // Backpressure is decided at admission, before any
                    // element ran: safe to resend the whole request.
                    attempt += 1;
                    if attempt >= retry.max_attempts.max(1) {
                        return Err(format!("server busy after {attempt} attempts"));
                    }
                    let sleep = Duration::from_millis(retry.backoff_ms(attempt, retry_after_ms));
                    if let Some(left) = remaining(started)? {
                        if sleep >= left {
                            return Err(format!(
                                "server busy; backoff would exceed the client deadline of {} ms",
                                retry.overall_ms.unwrap_or(0)
                            ));
                        }
                    }
                    std::thread::sleep(sleep);
                    continue 'attempts;
                }
            }
        }
        return Ok(replies);
    }
}

/// Extracts the [`Optimized`] payload from a success reply document.
fn into_optimized(doc: &Json, raw: &str) -> Result<Optimized, String> {
    let n = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    Ok(Optimized {
        ir: doc
            .get("ir")
            .and_then(Json::as_str)
            .ok_or("reply missing `ir`")?
            .to_string(),
        checks: (n("checks_total"), n("removed_fully"), n("hoisted")),
        incidents: (n("incidents"), n("degraded_incidents")),
        functions_from_cache: n("functions_from_cache"),
        deadline_exceeded: doc
            .get("deadline_exceeded")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        metrics: extract_metrics(doc, raw),
        trace: doc.get("trace").and_then(Json::as_str).map(str::to_string),
    })
}

/// Slices the verbatim `metrics` field out of a raw success reply. The
/// server's `ok_response` always emits `"metrics":…}` as the final field,
/// so the document between that marker and the closing brace is exactly
/// what `module_metrics_json` produced.
fn extract_metrics(doc: &Json, raw: &str) -> Option<String> {
    if matches!(doc.get("metrics"), None | Some(Json::Null)) {
        return None;
    }
    let start = raw.rfind(",\"metrics\":")? + ",\"metrics\":".len();
    let end = raw.len().checked_sub(1)?;
    Some(raw.get(start..end)?.to_string())
}

/// Sends a `ping`; true when a live server answered.
pub fn ping(socket: &Path) -> bool {
    ping_at(&Endpoint::uds(socket))
}

/// [`ping`] against any endpoint.
pub fn ping_at(endpoint: &Endpoint) -> bool {
    matches!(
        roundtrip_at(endpoint, "{\"cmd\":\"ping\"}", None),
        Ok(Reply::Ok(..))
    )
}

/// Sends a `shutdown` request.
pub fn shutdown(socket: &Path) -> Result<(), String> {
    shutdown_at(&Endpoint::uds(socket))
}

/// [`shutdown`] against any endpoint.
pub fn shutdown_at(endpoint: &Endpoint) -> Result<(), String> {
    match roundtrip_at(endpoint, "{\"cmd\":\"shutdown\"}", None)? {
        Reply::Ok(..) => Ok(()),
        Reply::Busy { .. } => Err("server busy; shutdown not accepted".to_string()),
        Reply::Err(e) => Err(e),
    }
}

/// Sends a `stats` request and returns the raw document.
pub fn stats(socket: &Path) -> Result<Json, String> {
    stats_at(&Endpoint::uds(socket))
}

/// [`stats`] against any endpoint.
pub fn stats_at(endpoint: &Endpoint) -> Result<Json, String> {
    match roundtrip_at(endpoint, "{\"cmd\":\"stats\"}", None)? {
        Reply::Ok(doc, _) => Ok(doc),
        Reply::Busy { .. } => Err("server busy".to_string()),
        Reply::Err(e) => Err(e),
    }
}

/// Sends a `metrics` request and returns the Prometheus-style text
/// exposition, unescaped and ready to print or scrape.
pub fn metrics(socket: &Path, deterministic: bool) -> Result<String, String> {
    metrics_at(&Endpoint::uds(socket), deterministic)
}

/// [`metrics`] against any endpoint.
pub fn metrics_at(endpoint: &Endpoint, deterministic: bool) -> Result<String, String> {
    let request = format!("{{\"cmd\":\"metrics\",\"deterministic\":{deterministic}}}");
    match roundtrip_at(endpoint, &request, None)? {
        Reply::Ok(doc, _) => doc
            .get("exposition")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "reply missing `exposition`".to_string()),
        Reply::Busy { .. } => Err("server busy".to_string()),
        Reply::Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for attempt in 1..10u32 {
            for delay in [2u64, 10, 100, 250] {
                let a = jitter(42, attempt, delay);
                let b = jitter(42, attempt, delay);
                assert_eq!(a, b, "same seed/attempt must replay");
                assert!(
                    a >= delay / 2 && a <= delay,
                    "{a} outside [{}, {delay}]",
                    delay / 2
                );
            }
        }
        assert_ne!(
            jitter(1, 3, 100),
            jitter(2, 3, 100),
            "different seeds should (here) diverge"
        );
    }

    #[test]
    fn backoff_doubles_floors_on_hint_and_caps() {
        let p = RetryPolicy {
            base_ms: 10,
            cap_ms: 80,
            seed: 7,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff_ms(1, 0);
        assert!(
            (5..=10).contains(&b1),
            "attempt 1 jitters around base: {b1}"
        );
        let b5 = p.backoff_ms(5, 0);
        assert!(b5 <= 80, "cap bounds the exponential: {b5}");
        assert_eq!(p.backoff_ms(1, 400), 400, "server hint is a floor");
    }

    #[test]
    fn queued_replies_parse_as_busy_with_position() {
        let payload = crate::proto::queued_response(12, 55);
        match parse_reply(payload.as_bytes()).unwrap() {
            Reply::Busy {
                retry_after_ms,
                queued,
            } => {
                assert_eq!(retry_after_ms, 55);
                assert_eq!(queued, Some(12));
            }
            other => panic!("{other:?}"),
        }
        // Pre-shard busy replies still parse, with no position.
        let payload = crate::proto::busy_response(40);
        match parse_reply(payload.as_bytes()).unwrap() {
            Reply::Busy { queued, .. } => assert_eq!(queued, None),
            other => panic!("{other:?}"),
        }
    }
}
