//! Transport abstraction: `abcdd` listens on Unix-domain sockets and TCP
//! simultaneously, speaking the same framed protocol over both.
//!
//! A [`ListenAddr`] is parsed from `--listen uds:PATH` / `--listen
//! tcp:HOST:PORT` (a bare path means UDS, for compatibility with
//! `--socket`). Every listener feeds the same shard set, so a TCP client
//! and a UDS client hit the same caches and the same queues; the only
//! transport-visible differences are connection setup cost and
//! `TCP_NODELAY`, which is always set — the protocol is strictly
//! request/reply and Nagle would serialize pipelined batch replies.
//!
//! [`Conn`] erases the stream type behind one enum (no trait objects: the
//! supervisor clones connections into rescue slots, and `try_clone` is not
//! object-safe). [`Endpoint`] is the client-side counterpart.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One address the server binds: `uds:PATH` or `tcp:HOST:PORT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenAddr {
    /// A Unix-domain socket path (created on bind, removed on drop).
    Uds(PathBuf),
    /// A TCP bind address, e.g. `127.0.0.1:7433` or `127.0.0.1:0`.
    Tcp(String),
}

impl ListenAddr {
    /// Parses `uds:PATH`, `tcp:ADDR`, or a bare path (UDS).
    pub fn parse(spec: &str) -> Result<ListenAddr, String> {
        if let Some(path) = spec.strip_prefix("uds:") {
            if path.is_empty() {
                return Err("empty uds path".to_string());
            }
            Ok(ListenAddr::Uds(PathBuf::from(path)))
        } else if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("empty tcp address".to_string());
            }
            Ok(ListenAddr::Tcp(addr.to_string()))
        } else if spec.is_empty() {
            Err("empty listen spec".to_string())
        } else {
            Ok(ListenAddr::Uds(PathBuf::from(spec)))
        }
    }

    /// Human-readable form, also reparsable by [`ListenAddr::parse`].
    pub fn describe(&self) -> String {
        match self {
            ListenAddr::Uds(p) => format!("uds:{}", p.display()),
            ListenAddr::Tcp(a) => format!("tcp:{a}"),
        }
    }
}

/// One accepted (or dialed) connection, UDS or TCP.
#[derive(Debug)]
pub enum Conn {
    /// A Unix-domain stream.
    Uds(UnixStream),
    /// A TCP stream (`TCP_NODELAY` already set).
    Tcp(TcpStream),
}

impl Conn {
    /// Clones the underlying handle (both halves share the socket).
    pub fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Uds(s) => Conn::Uds(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    /// Shuts the connection down (both directions).
    pub fn shutdown(&self, how: Shutdown) -> std::io::Result<()> {
        match self {
            Conn::Uds(s) => s.shutdown(how),
            Conn::Tcp(s) => s.shutdown(how),
        }
    }

    /// Bounds blocking reads.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Uds(s) => s.set_read_timeout(t),
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Bounds blocking writes.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Uds(s) => s.set_write_timeout(t),
            Conn::Tcp(s) => s.set_write_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Uds(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Uds(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Uds(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// One bound listener. TCP remembers the *resolved* local address, so a
/// `tcp:127.0.0.1:0` bind can report its ephemeral port.
#[derive(Debug)]
pub enum Listener {
    /// A bound Unix-domain socket.
    Uds(UnixListener, PathBuf),
    /// A bound TCP socket and its resolved local address.
    Tcp(TcpListener, SocketAddr),
}

impl Listener {
    /// Binds `addr`. A stale UDS socket file from a crashed daemon is
    /// removed, but only after a probe connect proves no live server owns
    /// it — we never steal a running server's socket.
    pub fn bind(addr: &ListenAddr) -> std::io::Result<Listener> {
        match addr {
            ListenAddr::Uds(path) => {
                if path.exists() {
                    if UnixStream::connect(path).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("{} already has a live server", path.display()),
                        ));
                    }
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Uds(UnixListener::bind(path)?, path.clone()))
            }
            ListenAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec.as_str())?;
                let local = listener.local_addr()?;
                Ok(Listener::Tcp(listener, local))
            }
        }
    }

    /// Blocks for the next connection. TCP connections get `TCP_NODELAY`.
    pub fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Uds(l, _) => l.accept().map(|(s, _)| Conn::Uds(s)),
            Listener::Tcp(l, _) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
        }
    }

    /// The address this listener actually bound (TCP ports resolved).
    pub fn resolved(&self) -> ListenAddr {
        match self {
            Listener::Uds(_, path) => ListenAddr::Uds(path.clone()),
            Listener::Tcp(_, local) => ListenAddr::Tcp(local.to_string()),
        }
    }
}

/// A client-side address: where to dial a running `abcdd`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Uds(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7433`.
    Tcp(String),
}

impl Endpoint {
    /// Parses `uds:PATH`, `tcp:ADDR`, or a bare path (UDS).
    pub fn parse(spec: &str) -> Result<Endpoint, String> {
        Ok(match ListenAddr::parse(spec)? {
            ListenAddr::Uds(p) => Endpoint::Uds(p),
            ListenAddr::Tcp(a) => Endpoint::Tcp(a),
        })
    }

    /// A UDS endpoint for `path`.
    pub fn uds(path: impl AsRef<Path>) -> Endpoint {
        Endpoint::Uds(path.as_ref().to_path_buf())
    }

    /// Dials the endpoint.
    pub fn connect(&self) -> std::io::Result<Conn> {
        match self {
            Endpoint::Uds(path) => UnixStream::connect(path).map(Conn::Uds),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(|s| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
        }
    }

    /// Human-readable form.
    pub fn describe(&self) -> String {
        match self {
            Endpoint::Uds(p) => format!("uds:{}", p.display()),
            Endpoint::Tcp(a) => format!("tcp:{a}"),
        }
    }
}

/// Wakes a blocking `accept` by dialing the listener and hanging up —
/// how shutdown unblocks every acceptor thread.
pub(crate) fn wake(addr: &ListenAddr) {
    let _ = match addr {
        ListenAddr::Uds(path) => UnixStream::connect(path).map(Conn::Uds),
        ListenAddr::Tcp(a) => TcpStream::connect(a.as_str()).map(Conn::Tcp),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_specs_parse_and_describe() {
        assert_eq!(
            ListenAddr::parse("uds:/tmp/x.sock").unwrap(),
            ListenAddr::Uds(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            ListenAddr::parse("tcp:127.0.0.1:0").unwrap(),
            ListenAddr::Tcp("127.0.0.1:0".to_string())
        );
        assert_eq!(
            ListenAddr::parse("/tmp/bare.sock").unwrap(),
            ListenAddr::Uds(PathBuf::from("/tmp/bare.sock")),
            "bare paths stay UDS for --socket compatibility"
        );
        assert!(ListenAddr::parse("uds:").is_err());
        assert!(ListenAddr::parse("tcp:").is_err());
        assert!(ListenAddr::parse("").is_err());
        let spec = ListenAddr::parse("tcp:localhost:9").unwrap();
        assert_eq!(ListenAddr::parse(&spec.describe()).unwrap(), spec);
    }

    #[test]
    fn tcp_listener_resolves_ephemeral_ports() {
        let listener = Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_string())).unwrap();
        match listener.resolved() {
            ListenAddr::Tcp(addr) => {
                assert!(!addr.ends_with(":0"), "{addr} should carry the real port");
                let conn = Endpoint::Tcp(addr).connect();
                assert!(conn.is_ok(), "resolved address must be dialable");
            }
            other => panic!("{other:?}"),
        }
    }
}
