//! The `abcdd` wire protocol: length-prefixed JSON frames over a
//! Unix-domain socket or TCP connection.
//!
//! # Framing
//!
//! Every message — in both directions — is one frame: a big-endian `u32`
//! byte length followed by exactly that many bytes of UTF-8 JSON. Frames
//! above [`MAX_FRAME`] are rejected before allocation. One connection
//! carries one request frame and its replies (connect → send → receive →
//! close), which keeps admission control trivially fair: the bounded
//! queue holds connections, not partially-read requests.
//!
//! # Protocol v2: pipelined batches
//!
//! A request frame whose JSON payload is an **array** is a v2 batch: each
//! element is one `optimize` request body (the `"cmd"` field is optional
//! inside a batch; when present it must be `"optimize"` — batching is for
//! compilation, not control commands). The server streams back one reply
//! frame **per element, in request order**, then closes. Deadlines stay
//! per-request: element k tripping its `deadline_ms` fails open (see
//! below) without affecting elements k+1…N. An empty batch (`[]`) is a
//! structured error, and the [`MAX_FRAME`] cap applies to the whole batch
//! frame. v1 (single JSON object) and v2 clients share the same socket —
//! the server dispatches on the payload's first non-space byte.
//!
//! # Requests
//!
//! ```json
//! {"cmd":"optimize", "source":"fn main() ...",       // or "ir":"func @f..."
//!  "options":{"pre":true,"hot_threshold":10, ...},   // optional, defaults
//!  "profile":{"sites":[[0,0,500]],"blocks":[[0,1,500]],"edges":[]},
//!  "metrics":true, "deterministic_metrics":false,
//!  "deadline_ms":250,            // per-request deadline (null = server default)
//!  "trace":false}                // attach an `abcd-trace/3` JSONL document
//! {"cmd":"ping"}
//! {"cmd":"stats"}
//! {"cmd":"metrics","deterministic":false}   // Prometheus-style exposition
//! {"cmd":"sleep","ms":100}      // diagnostic: occupy a worker (tests)
//! {"cmd":"shutdown"}
//! ```
//!
//! # Responses
//!
//! ```json
//! {"ok":true,"ir":"...","checks_total":4,"removed_fully":2,"hoisted":0,
//!  "incidents":0,"degraded_incidents":0,"functions_from_cache":1,
//!  "deadline_exceeded":false,    // true → `ir` is the unoptimized module
//!  "trace":"...",                // JSONL string, only when requested
//!  "metrics":{...}}                                  // null unless requested
//! {"ok":true,"exposition":"abcdd_requests_total{outcome=\"served\"} 3\n..."}
//! {"ok":false,"busy":true,"retry_after_ms":40,"error":"server at capacity"}
//! {"ok":false,"error":"line 3: unknown instruction ..."}
//! ```
//!
//! # Deadline semantics
//!
//! `deadline_ms` bounds the time from *admission* (enqueue) to the reply.
//! When it trips, the server **fails open**: the reply is still `"ok":true`
//! and still a correct program — the module compiled but *unoptimized*,
//! every bounds check kept — flagged with `"deadline_exceeded":true` and a
//! non-degraded `deadline_exceeded` incident in the report. A deadline is
//! a precision/latency trade, never a correctness one. Requests without
//! `deadline_ms` inherit the server's `--request-timeout`, if set.
//!
//! # Retry contract
//!
//! A `busy` response means every shard's admission queue was full at
//! connect time. The request was *not* partially processed; clients
//! should resend the identical frame after backing off. `retry_after_ms`
//! is an **adaptive hint**: the server scales it with the backlog it saw
//! when it shed the connection (a loaded queue advises a longer pause),
//! so a thundering herd spreads out instead of re-colliding. The sharded
//! server degrades to **queue-position replies** instead of bare
//! busy-shedding: `{"ok":false,"busy":true,"queued":P,...}` tells the
//! client it would have been P-th in line, so patience can scale with P
//! rather than be guessed. `busy:true` is retained so v1 clients parse
//! queue-position replies as ordinary backpressure. Clients should treat
//! the hint as a floor, add exponential backoff with jitter on repeated
//! busy replies, and give up after an attempt cap or an overall deadline
//! (see `abcd_server::RetryPolicy`, which implements exactly this). Every
//! non-busy `"ok":false` is a terminal, structured error — resending the
//! same request will fail the same way.

use crate::json::{escape, Json};
use abcd::{ModuleReport, OptimizerOptions};
use abcd_ir::{Block, CheckSite, FuncId};
use abcd_vm::Profile;
use std::io::{Read, Write};

/// Upper bound on a single frame (64 MiB) — shields the server from
/// hostile or corrupted length prefixes.
pub const MAX_FRAME: u32 = 64 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// One optimization request.
#[derive(Debug)]
pub struct OptimizeRequest {
    /// MJ source to compile (mutually exclusive with `ir`).
    pub source: Option<String>,
    /// Textual IR to parse (mutually exclusive with `source`).
    pub ir: Option<String>,
    /// Optimizer options (wire defaults = [`OptimizerOptions::default`]).
    pub options: OptimizerOptions,
    /// Optional execution profile.
    pub profile: Option<Profile>,
    /// Attach the `abcd-metrics/6` blob to the response.
    pub metrics: bool,
    /// Zero all durations in the metrics blob (byte-comparable output).
    /// Also zeroes trace durations when `trace` is set.
    pub deterministic_metrics: bool,
    /// Attach an `abcd-trace/3` JSONL document to the response. Tracing is
    /// a per-request observation knob, deliberately *not* an optimizer
    /// option: it must never change cache keys or analysis results.
    pub trace: bool,
    /// Per-request deadline in milliseconds, measured from admission.
    /// `None` inherits the server default (see the deadline semantics
    /// above); tripping it fails open, never closed.
    pub deadline_ms: Option<u64>,
}

/// A parsed request.
#[derive(Debug)]
pub enum Request {
    /// Optimize a module.
    Optimize(Box<OptimizeRequest>),
    /// A protocol-v2 pipelined batch: N optimize requests in one frame,
    /// answered by N reply frames in request order.
    Batch(Vec<OptimizeRequest>),
    /// Liveness probe.
    Ping,
    /// Server + cache counters.
    Stats,
    /// Prometheus-style text exposition of the server's counters and
    /// histograms; `deterministic` zeroes every sampled value so the
    /// exposition *format* can be golden-tested.
    Metrics {
        /// Zero histogram samples and counters that depend on timing.
        deterministic: bool,
    },
    /// Diagnostic: hold a worker for `ms` milliseconds, then reply.
    Sleep(u64),
    /// Drain in-flight requests and exit.
    Shutdown,
}

/// Parses one request frame. Every failure is a structured message that
/// becomes an `"ok":false` response — never a panic, never a dropped
/// connection without a reply.
pub fn parse_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    if let Json::Arr(items) = &doc {
        // Protocol v2: a top-level array is a pipelined batch.
        if items.is_empty() {
            return Err("empty batch: a v2 frame needs at least one request".to_string());
        }
        let batch = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                if let Some(cmd) = item.get("cmd").and_then(Json::as_str) {
                    if cmd != "optimize" {
                        return Err(format!(
                            "batch element {i}: only `optimize` may be batched, got `{cmd}`"
                        ));
                    }
                }
                parse_optimize_body(item).map_err(|e| format!("batch element {i}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Request::Batch(batch));
    }
    let cmd = doc
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or("missing string field `cmd`")?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics {
            deterministic: doc
                .get("deterministic")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        }),
        "shutdown" => Ok(Request::Shutdown),
        "sleep" => Ok(Request::Sleep(
            doc.get("ms")
                .and_then(Json::as_u64)
                .unwrap_or(50)
                .min(5_000),
        )),
        "optimize" => Ok(Request::Optimize(Box::new(parse_optimize_body(&doc)?))),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

/// Parses the body of one optimize request (shared by v1 single requests
/// and v2 batch elements).
fn parse_optimize_body(doc: &Json) -> Result<OptimizeRequest, String> {
    let source = doc.get("source").and_then(Json::as_str).map(str::to_string);
    let ir = doc.get("ir").and_then(Json::as_str).map(str::to_string);
    match (&source, &ir) {
        (None, None) => return Err("optimize needs `source` or `ir`".to_string()),
        (Some(_), Some(_)) => return Err("optimize takes `source` or `ir`, not both".to_string()),
        _ => {}
    }
    let options = match doc.get("options") {
        None | Some(Json::Null) => OptimizerOptions::default(),
        Some(o) => parse_options(o)?,
    };
    let profile = match doc.get("profile") {
        None | Some(Json::Null) => None,
        Some(p) => Some(parse_profile(p)?),
    };
    Ok(OptimizeRequest {
        source,
        ir,
        options,
        profile,
        metrics: doc.get("metrics").and_then(Json::as_bool).unwrap_or(false),
        deterministic_metrics: doc
            .get("deterministic_metrics")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        trace: doc.get("trace").and_then(Json::as_bool).unwrap_or(false),
        deadline_ms: doc.get("deadline_ms").and_then(Json::as_u64),
    })
}

fn parse_options(doc: &Json) -> Result<OptimizerOptions, String> {
    let Json::Obj(map) = doc else {
        return Err("`options` must be an object".to_string());
    };
    let mut o = OptimizerOptions::default();
    for (key, value) in map {
        let flag = || {
            value
                .as_bool()
                .ok_or_else(|| format!("option `{key}` must be a bool"))
        };
        let count = || match value {
            Json::Null => Ok(None),
            v => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("option `{key}` must be a non-negative integer or null")),
        };
        match key.as_str() {
            "upper" => o.upper = flag()?,
            "lower" => o.lower = flag()?,
            "cleanup" => o.cleanup = flag()?,
            "pre" => o.pre = flag()?,
            "gvn_hook" => o.gvn_hook = flag()?,
            "merge_checks" => o.merge_checks = flag()?,
            "classify_local" => o.classify_local = flag()?,
            "interprocedural" => o.interprocedural = flag()?,
            "verify_ir" => o.verify_ir = flag()?,
            "validate" => o.validate = flag()?,
            "isolate_panics" => o.isolate_panics = flag()?,
            "hot_threshold" => o.hot_threshold = count()?,
            "fuel_per_query" => o.fuel_per_query = count()?,
            "fuel_per_function" => o.fuel_per_function = count()?,
            "prover" => {
                let name = value
                    .as_str()
                    .ok_or_else(|| format!("option `{key}` must be a string"))?;
                o.prover = abcd::ProverBackend::parse(name)
                    .ok_or_else(|| format!("unknown prover `{name}`"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn parse_profile(doc: &Json) -> Result<Profile, String> {
    let mut profile = Profile::new();
    let rows = |key: &str, width: usize| -> Result<Vec<Vec<u64>>, String> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|row| {
                    let row = row
                        .as_arr()
                        .ok_or_else(|| format!("profile `{key}` rows must be arrays"))?;
                    if row.len() != width {
                        return Err(format!("profile `{key}` rows must have {width} fields"));
                    }
                    row.iter()
                        .map(|v| {
                            v.as_u64()
                                .ok_or_else(|| format!("profile `{key}` fields must be counts"))
                        })
                        .collect()
                })
                .collect(),
            Some(_) => Err(format!("profile `{key}` must be an array")),
        }
    };
    for row in rows("sites", 3)? {
        profile.add_site_count(
            FuncId::new(row[0] as usize),
            CheckSite::new(row[1] as usize),
            row[2],
        );
    }
    for row in rows("blocks", 3)? {
        profile.add_block_count(
            FuncId::new(row[0] as usize),
            Block::new(row[1] as usize),
            row[2],
        );
    }
    for row in rows("edges", 4)? {
        profile.add_edge_count(
            FuncId::new(row[0] as usize),
            Block::new(row[1] as usize),
            Block::new(row[2] as usize),
            row[3],
        );
    }
    Ok(profile)
}

/// Serializes a profile as the wire triples, sorted for determinism.
pub fn profile_json(profile: &Profile) -> String {
    let mut sites: Vec<(usize, usize, u64)> = profile
        .site_entries()
        .map(|((f, s), n)| (f.index(), s.index(), n))
        .collect();
    sites.sort_unstable();
    let mut blocks: Vec<(usize, usize, u64)> = profile
        .block_entries()
        .map(|((f, b), n)| (f.index(), b.index(), n))
        .collect();
    blocks.sort_unstable();
    let mut edges: Vec<(usize, usize, usize, u64)> = profile
        .edge_entries()
        .map(|((f, a, b), n)| (f.index(), a.index(), b.index(), n))
        .collect();
    edges.sort_unstable();
    let mut out = String::from("{\"sites\":[");
    for (i, (f, s, n)) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{f},{s},{n}]"));
    }
    out.push_str("],\"blocks\":[");
    for (i, (f, b, n)) in blocks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{f},{b},{n}]"));
    }
    out.push_str("],\"edges\":[");
    for (i, (f, a, b, n)) in edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{f},{a},{b},{n}]"));
    }
    out.push_str("]}");
    out
}

/// Serializes optimizer options as the wire object (every knob explicit,
/// so a request replayed against a future server with different defaults
/// still means the same thing).
pub fn options_json(o: &OptimizerOptions) -> String {
    let count = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |n| n.to_string());
    format!(
        "{{\"upper\":{},\"lower\":{},\"cleanup\":{},\"pre\":{},\"gvn_hook\":{},\
         \"merge_checks\":{},\"classify_local\":{},\"hot_threshold\":{},\
         \"interprocedural\":{},\"fuel_per_query\":{},\"fuel_per_function\":{},\
         \"verify_ir\":{},\"validate\":{},\"isolate_panics\":{},\
         \"prover\":\"{}\"}}",
        o.upper,
        o.lower,
        o.cleanup,
        o.pre,
        o.gvn_hook,
        o.merge_checks,
        o.classify_local,
        count(o.hot_threshold),
        o.interprocedural,
        count(o.fuel_per_query),
        count(o.fuel_per_function),
        o.verify_ir,
        o.validate,
        o.isolate_panics,
        o.prover.name(),
    )
}

/// Builds an `optimize` request frame payload.
pub fn optimize_request_json(
    source_or_ir: (&str, bool),
    options: &OptimizerOptions,
    profile: Option<&Profile>,
    metrics: bool,
    deterministic_metrics: bool,
    trace: bool,
    deadline_ms: Option<u64>,
) -> String {
    let (text, is_ir) = source_or_ir;
    let field = if is_ir { "ir" } else { "source" };
    let deadline = deadline_ms.map_or_else(|| "null".to_string(), |d| d.to_string());
    format!(
        "{{\"cmd\":\"optimize\",\"{field}\":\"{}\",\"options\":{},\"profile\":{},\
         \"metrics\":{metrics},\"deterministic_metrics\":{deterministic_metrics},\
         \"trace\":{trace},\"deadline_ms\":{deadline}}}",
        escape(text),
        options_json(options),
        profile.map_or_else(|| "null".to_string(), profile_json),
    )
}

/// Builds the success response for an optimized module. `metrics` is a
/// pre-rendered `abcd-metrics/6` document spliced in verbatim; `trace` is
/// a pre-rendered `abcd-trace/3` JSONL document attached as a string.
/// `deadline_exceeded` marks a fail-open reply whose `ir` is the compiled
/// but unoptimized module. `metrics` must stay the final field — clients
/// locate it by scanning from the end of the frame.
pub fn ok_response(
    ir: &str,
    report: &ModuleReport,
    deadline_exceeded: bool,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> String {
    let trace = trace.map_or_else(|| "null".to_string(), |t| format!("\"{}\"", escape(t)));
    format!(
        "{{\"ok\":true,\"ir\":\"{}\",\"checks_total\":{},\"removed_fully\":{},\
         \"hoisted\":{},\"incidents\":{},\"degraded_incidents\":{},\
         \"functions_from_cache\":{},\"deadline_exceeded\":{deadline_exceeded},\
         \"trace\":{trace},\"metrics\":{}}}",
        escape(ir),
        report.checks_total(),
        report.checks_removed_fully(),
        report.checks_hoisted(),
        report.incident_count(),
        report.degraded_incident_count(),
        report.functions_from_cache(),
        metrics.unwrap_or("null"),
    )
}

/// Builds a terminal error response.
pub fn error_response(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(message))
}

/// Builds the load-shedding response (see the retry contract above).
pub fn busy_response(retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"busy\":true,\"retry_after_ms\":{retry_after_ms},\
         \"error\":\"server at capacity\"}}"
    )
}

/// Builds a queue-position backpressure reply: all shards were full, and
/// the request would have been `position`-th in line. Keeps `busy:true`
/// so protocol-v1 clients treat it as ordinary backpressure.
pub fn queued_response(position: u64, retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"busy\":true,\"queued\":{position},\
         \"retry_after_ms\":{retry_after_ms},\
         \"error\":\"all shards at capacity\"}}"
    )
}

/// Wraps pre-rendered optimize request bodies (each built by
/// [`optimize_request_json`]) into one protocol-v2 batch frame payload.
pub fn batch_request_json(bodies: &[String]) -> String {
    let mut out = String::with_capacity(bodies.iter().map(String::len).sum::<usize>() + 16);
    out.push('[');
    for (i, body) in bodies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(body);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"cmd\":\"ping\"}").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"{\"cmd\":\"ping\"}");
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut header = (MAX_FRAME + 1).to_be_bytes().to_vec();
        header.extend_from_slice(b"xx");
        assert!(read_frame(&mut &header[..]).is_err());
    }

    #[test]
    fn request_parsing_and_defaults() {
        let req = parse_request(br#"{"cmd":"optimize","source":"fn main() -> int { return 0; }"}"#)
            .unwrap();
        match req {
            Request::Optimize(o) => {
                assert!(o.source.is_some() && o.ir.is_none());
                assert!(o.options.pre, "wire defaults mirror OptimizerOptions");
                assert!(!o.metrics);
                assert_eq!(o.deadline_ms, None, "no deadline unless requested");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_request(b"{\"cmd\":\"ping\"}"),
            Ok(Request::Ping)
        ));
        assert!(parse_request(b"{\"cmd\":\"optimize\"}").is_err());
        assert!(parse_request(b"{\"cmd\":\"nope\"}").is_err());
        assert!(parse_request(b"not json").is_err());
        assert!(
            parse_request(br#"{"cmd":"optimize","ir":"x","options":{"warp":true}}"#).is_err(),
            "unknown options are structured errors"
        );
    }

    #[test]
    fn options_and_profile_round_trip() {
        let options = OptimizerOptions {
            pre: false,
            hot_threshold: Some(7),
            fuel_per_query: Some(1000),
            prover: abcd::ProverBackend::Auto,
            ..OptimizerOptions::default()
        };
        let mut profile = Profile::new();
        profile.add_site_count(FuncId::new(0), CheckSite::new(2), 41);
        profile.add_block_count(FuncId::new(1), Block::new(3), 9);
        profile.add_edge_count(FuncId::new(0), Block::new(0), Block::new(1), 5);
        let payload = optimize_request_json(
            ("func", true),
            &options,
            Some(&profile),
            true,
            true,
            true,
            Some(750),
        );
        let req = parse_request(payload.as_bytes()).unwrap();
        let Request::Optimize(o) = req else {
            panic!("expected optimize");
        };
        assert_eq!(o.deadline_ms, Some(750));
        assert_eq!(o.ir.as_deref(), Some("func"));
        assert!(!o.options.pre);
        assert_eq!(o.options.hot_threshold, Some(7));
        assert_eq!(o.options.fuel_per_query, Some(1000));
        assert_eq!(o.options.prover, abcd::ProverBackend::Auto);
        let p = o.profile.unwrap();
        assert_eq!(p.site_count(FuncId::new(0), CheckSite::new(2)), 41);
        assert_eq!(p.block_count(FuncId::new(1), Block::new(3)), 9);
        assert_eq!(
            p.edge_count(FuncId::new(0), Block::new(0), Block::new(1)),
            5
        );
        assert!(o.metrics && o.deterministic_metrics && o.trace);
    }

    #[test]
    fn batch_frames_parse_and_reject_edges() {
        let one = optimize_request_json(
            ("func", true),
            &OptimizerOptions::default(),
            None,
            false,
            false,
            false,
            Some(50),
        );
        let two = optimize_request_json(
            ("fn main() -> int { return 0; }", false),
            &OptimizerOptions::default(),
            None,
            true,
            true,
            false,
            None,
        );
        let payload = batch_request_json(&[one, two]);
        let Request::Batch(batch) = parse_request(payload.as_bytes()).unwrap() else {
            panic!("expected batch");
        };
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].ir.as_deref(), Some("func"));
        assert_eq!(batch[0].deadline_ms, Some(50));
        assert!(batch[1].source.is_some() && batch[1].metrics);

        // `cmd` is optional in a batch but must be `optimize` when present.
        assert!(matches!(
            parse_request(br#"[{"ir":"func @f"}]"#),
            Ok(Request::Batch(b)) if b.len() == 1
        ));
        let err = parse_request(br#"[{"cmd":"ping"}]"#).unwrap_err();
        assert!(err.contains("only `optimize`"), "{err}");

        // Empty batches and malformed elements are structured errors.
        assert!(parse_request(b"[]").unwrap_err().contains("empty batch"));
        let err = parse_request(br#"[{"ir":"a"},{"cmd":"optimize"}]"#).unwrap_err();
        assert!(err.contains("batch element 1"), "{err}");
    }

    #[test]
    fn queued_response_is_busy_compatible() {
        let text = queued_response(7, 40);
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("busy").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("queued").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("retry_after_ms").and_then(Json::as_u64), Some(40));
    }

    #[test]
    fn metrics_request_parses_with_default() {
        assert!(matches!(
            parse_request(br#"{"cmd":"metrics"}"#),
            Ok(Request::Metrics {
                deterministic: false
            })
        ));
        assert!(matches!(
            parse_request(br#"{"cmd":"metrics","deterministic":true}"#),
            Ok(Request::Metrics {
                deterministic: true
            })
        ));
    }
}
