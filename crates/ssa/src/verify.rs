//! SSA-form verification: definitions dominate uses, no locals remain.

use crate::dom::DomTree;
use abcd_ir::{Block, Function, InstId, InstKind, Value, ValueDef};
use std::error::Error;
use std::fmt;

/// A violation of SSA form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SsaViolation {
    /// A use is not dominated by its definition.
    UseNotDominated {
        /// The used value.
        value: Value,
        /// Block containing the use.
        use_block: Block,
    },
    /// A `get_local`/`set_local` survives in supposed SSA form.
    LocalOpRemains(InstId),
    /// A value is used but its defining instruction is not linked into any
    /// block.
    UnlinkedDef(Value),
}

impl fmt::Display for SsaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsaViolation::UseNotDominated { value, use_block } => {
                write!(
                    f,
                    "use of {value} in {use_block} not dominated by its definition"
                )
            }
            SsaViolation::LocalOpRemains(id) => write!(f, "locals op {id} remains in SSA form"),
            SsaViolation::UnlinkedDef(v) => write!(f, "{v} is used but its definition is unlinked"),
        }
    }
}

impl Error for SsaViolation {}

/// Verifies that `func` is in SSA (or e-SSA) form:
///
/// * no `get_local`/`set_local` instructions remain,
/// * every non-φ use is dominated by its definition,
/// * every φ argument's definition dominates the end of the corresponding
///   predecessor block.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_ssa(func: &Function) -> Result<(), SsaViolation> {
    let dt = DomTree::compute(func);
    let locations = func.inst_locations();

    // def position per value: (block, pos); params at (entry, before-all).
    let def_pos = |v: Value| -> Option<(Block, isize)> {
        match func.value_def(v) {
            ValueDef::Param(_) => Some((func.entry(), -1)),
            ValueDef::Inst(id) => locations[id.index()].map(|(b, p)| (b, p as isize)),
        }
    };

    let check_use = |v: Value, use_block: Block, use_pos: isize| -> Result<(), SsaViolation> {
        let (db, dp) = def_pos(v).ok_or(SsaViolation::UnlinkedDef(v))?;
        let ok = if db == use_block {
            dp < use_pos
        } else {
            dt.strictly_dominates(db, use_block)
        };
        if ok {
            Ok(())
        } else {
            Err(SsaViolation::UseNotDominated {
                value: v,
                use_block,
            })
        }
    };

    for b in func.blocks() {
        if !dt.is_reachable(b) {
            continue;
        }
        for (pos, &id) in func.block(b).insts().iter().enumerate() {
            let inst = func.inst(id);
            match &inst.kind {
                InstKind::GetLocal { .. } | InstKind::SetLocal { .. } => {
                    return Err(SsaViolation::LocalOpRemains(id));
                }
                InstKind::Phi { args } => {
                    // Each argument is a use at the end of its predecessor.
                    for (p, v) in args {
                        check_use(*v, *p, isize::MAX)?;
                    }
                }
                kind => {
                    let mut result: Result<(), SsaViolation> = Ok(());
                    kind.for_each_use(|v| {
                        if result.is_ok() {
                            result = check_use(v, b, pos as isize);
                        }
                    });
                    result?;
                }
            }
        }
        if let Some(term) = func.block(b).terminator_opt() {
            let mut result: Result<(), SsaViolation> = Ok(());
            term.for_each_use(|v| {
                if result.is_ok() {
                    result = check_use(v, b, isize::MAX);
                }
            });
            result?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{CmpOp, FunctionBuilder, Type};

    #[test]
    fn use_before_def_in_other_branch_rejected() {
        // then-block defines y; else-block uses y: not dominated.
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.compare(CmpOp::Lt, x, zero);
        let (t, e) = (b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to_block(t);
        let y = b.copy(x);
        b.ret(Some(y));
        b.switch_to_block(e);
        b.ret(Some(y)); // violation
        let f = b.finish().unwrap();
        assert!(matches!(
            verify_ssa(&f),
            Err(SsaViolation::UseNotDominated { .. })
        ));
    }

    #[test]
    fn locals_rejected() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], None);
        let l = b.new_local(Type::Int);
        let x = b.param(0);
        b.set_local(l, x);
        b.ret(None);
        let f = b.finish().unwrap();
        assert!(matches!(
            verify_ssa(&f),
            Err(SsaViolation::LocalOpRemains(_))
        ));
    }

    #[test]
    fn valid_ssa_accepted() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let one = b.iconst(1);
        let y = b.binary(abcd_ir::BinOp::Add, x, one);
        b.ret(Some(y));
        let f = b.finish().unwrap();
        assert_eq!(verify_ssa(&f), Ok(()));
    }
}
