//! Extended SSA (e-SSA) construction: π-assignment insertion (§3 of the
//! ABCD paper).
//!
//! A π-assignment renames a value at a program point where a constraint on
//! it becomes known: on each out-edge of a conditional branch (constraint
//! class C4) and after each bounds check (class C5). Renaming makes the
//! flow-sensitive constraint flow-insensitive: a constraint on an e-SSA name
//! holds wherever that name is live.
//!
//! **Placement.** Branch πs conceptually live on CFG edges; after critical
//! edges are split (see [`split_critical_edges`](crate::split_critical_edges))
//! every branch target has a single predecessor, so the π can sit at the top
//! of the target block. Check πs sit immediately after their check.
//!
//! **Renaming.** A dominator-tree walk threads each π through the uses it
//! dominates, exactly like SSA renaming; π versions flow into existing
//! φ-arguments on the walked edges, which reproduces the paper's Figure 3
//! (the loop φ `j1 := φ(j0, j4)` picks up the π-derived `j4`). Like the
//! paper — which skips φ-insertion for `limit` in the running example — we
//! do not *create* new φs to merge π versions at joins: a merged π version
//! carries the weakest of the merged constraints, which is useful only in
//! the rare case of identical checks on distinct paths; forgoing it is sound
//! (constraints are only dropped, never invented).

use crate::dom::DomTree;
use abcd_ir::{
    predecessors, successors, Block, Function, InstId, InstKind, PiGuard, Terminator, Type, Value,
};
use std::collections::HashMap;

/// Statistics returned by [`insert_pi_nodes`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PiStats {
    /// π-assignments inserted for branch out-edges (class C4).
    pub branch_pis: usize,
    /// π-assignments inserted after bounds checks (class C5).
    pub check_pis: usize,
}

/// Converts an SSA-form function to e-SSA by inserting and threading
/// π-assignments. Requires critical edges to be split; branch out-edges
/// whose target has several predecessors are (soundly) skipped.
pub fn insert_pi_nodes(func: &mut Function) -> PiStats {
    let mut stats = PiStats::default();
    // Idempotence guard: a function already in e-SSA form would otherwise
    // silently receive a second, chained layer of π-assignments.
    let already_essa = func.blocks().any(|b| {
        func.block(b)
            .insts()
            .iter()
            .any(|&id| matches!(func.inst(id).kind, InstKind::Pi { .. }))
    });
    if already_essa {
        return stats;
    }
    let preds = predecessors(func);

    // ---- Phase A: create π instructions (inputs still the original names).

    // Branch πs: at the top of each branch target.
    for b in func.blocks().collect::<Vec<_>>() {
        let term = match func.block(b).terminator_opt() {
            Some(t) => t.clone(),
            None => continue,
        };
        let Terminator::Branch {
            cond,
            then_dst,
            else_dst,
        } = term
        else {
            continue;
        };
        // The condition must be a direct integer comparison.
        let (lhs, rhs) = match value_def_kind(func, cond) {
            Some(InstKind::Compare { lhs, rhs, .. }) => (lhs, rhs),
            _ => continue,
        };
        for (target, taken) in [(then_dst, true), (else_dst, false)] {
            if preds[target.index()].len() != 1 {
                continue; // unsplit critical edge: skip soundly
            }
            // One π per distinct integer operand (lhs may equal rhs).
            let mut operands = vec![lhs];
            if rhs != lhs {
                operands.push(rhs);
            }
            let mut pos = 0;
            for op in operands {
                if func.value_type(op) != &Type::Int {
                    continue;
                }
                let id = func.create_inst(
                    InstKind::Pi {
                        input: op,
                        guard: PiGuard::Branch { block: b, taken },
                    },
                    Some(Type::Int),
                );
                func.insert_inst(target, pos, id);
                pos += 1;
                stats.branch_pis += 1;
            }
        }
    }

    // Check πs: immediately after each bounds check, renaming the index.
    for b in func.blocks().collect::<Vec<_>>() {
        let ids: Vec<InstId> = func.block(b).insts().to_vec();
        let mut offset = 0usize;
        for (pos, id) in ids.iter().enumerate() {
            let InstKind::BoundsCheck {
                site,
                array,
                index,
                kind,
            } = func.inst(*id).kind.clone()
            else {
                continue;
            };
            let pi = func.create_inst(
                InstKind::Pi {
                    input: index,
                    guard: PiGuard::Check { site, array, kind },
                },
                Some(Type::Int),
            );
            func.insert_inst(b, pos + offset + 1, pi);
            offset += 1;
            stats.check_pis += 1;
        }
    }

    // ---- Phase B: thread the π versions through dominated uses.
    rename_pi_versions(func);
    stats
}

/// Returns the defining instruction kind of `v`, if it is an instruction
/// result.
fn value_def_kind(func: &Function, v: Value) -> Option<InstKind> {
    match func.value_def(v) {
        abcd_ir::ValueDef::Inst(id) => Some(func.inst(id).kind.clone()),
        abcd_ir::ValueDef::Param(_) => None,
    }
}

/// Dominator-tree renaming walk: every use sees the innermost π version of
/// its value family that dominates it. φ-arguments are rewritten per edge.
fn rename_pi_versions(func: &mut Function) {
    let dt = DomTree::compute(func);

    // Family roots: π results belong to the family of their (root) input.
    let mut root: HashMap<Value, Value> = HashMap::new();
    let root_of = |root: &HashMap<Value, Value>, v: Value| -> Value { *root.get(&v).unwrap_or(&v) };

    // Stacks of active versions per family root.
    let mut stacks: HashMap<Value, Vec<Value>> = HashMap::new();

    enum Step {
        Enter(Block),
        Exit(Vec<Value>), // roots to pop once
    }
    let mut work = vec![Step::Enter(func.entry())];

    while let Some(step) = work.pop() {
        match step {
            Step::Exit(pops) => {
                for r in pops {
                    stacks.get_mut(&r).expect("stack exists").pop();
                }
            }
            Step::Enter(b) => {
                let mut pops: Vec<Value> = Vec::new();
                let ids: Vec<InstId> = func.block(b).insts().to_vec();
                for id in ids {
                    let is_pi = matches!(func.inst(id).kind, InstKind::Pi { .. });
                    // Rewrite uses to the innermost active version.
                    // (φ argument rewriting happens on the predecessor's
                    // edge below, so skip φs here.)
                    if !matches!(func.inst(id).kind, InstKind::Phi { .. }) {
                        let stacks_ref = &stacks;
                        let root_ref = &root;
                        func.inst_mut(id).kind.map_uses(|v| {
                            let r = root_of(root_ref, v);
                            stacks_ref
                                .get(&r)
                                .and_then(|s| s.last())
                                .copied()
                                .unwrap_or(v)
                        });
                    }
                    if is_pi {
                        let (input, result) = match &func.inst(id).kind {
                            InstKind::Pi { input, .. } => {
                                (*input, func.inst(id).result.expect("pi has result"))
                            }
                            _ => unreachable!(),
                        };
                        let r = root_of(&root, input);
                        root.insert(result, r);
                        stacks.entry(r).or_default().push(result);
                        pops.push(r);
                    }
                }

                // Terminator uses.
                {
                    let stacks_ref = &stacks;
                    let root_ref = &root;
                    if let Some(term) = func.block(b).terminator_opt() {
                        let mut t = term.clone();
                        t.map_uses(|v| {
                            let r = root_of(root_ref, v);
                            stacks_ref
                                .get(&r)
                                .and_then(|s| s.last())
                                .copied()
                                .unwrap_or(v)
                        });
                        func.set_terminator(b, t);
                    }
                }

                // φ arguments along each out-edge.
                for s in successors(func, b) {
                    let ids: Vec<InstId> = func.block(s).insts().to_vec();
                    for id in ids {
                        if let InstKind::Phi { args } = &mut func.inst_mut(id).kind {
                            for (p, v) in args.iter_mut() {
                                if *p == b {
                                    let r = root_of(&root, *v);
                                    if let Some(top) = stacks.get(&r).and_then(|s| s.last()) {
                                        *v = *top;
                                    }
                                }
                            }
                        }
                    }
                }

                work.push(Step::Exit(pops));
                for &c in dt.children(b) {
                    work.push(Step::Enter(c));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{promote_locals, split_critical_edges, verify_ssa};
    use abcd_ir::{BinOp, CheckKind, CmpOp, FunctionBuilder, Type};

    /// The paper's single-loop fragment (Figure 3, first `for` loop):
    /// `for (j = st; j < limit; j++) { check a[j]; check a[j+1]; }`
    fn figure3_like() -> Function {
        let mut b = FunctionBuilder::new(
            "f",
            vec![Type::array_of(Type::Int), Type::Int, Type::Int],
            None,
        );
        let a = b.param(0);
        let st = b.param(1);
        let limit = b.param(2);
        let j = b.new_local(Type::Int);
        b.set_local(j, st);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to_block(head);
        let jv = b.get_local(j);
        let c = b.compare(CmpOp::Lt, jv, limit);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        let jv2 = b.get_local(j);
        b.bounds_check(a, jv2, CheckKind::Upper);
        let _x = b.load(a, jv2);
        let one = b.iconst(1);
        let t = b.binary(BinOp::Add, jv2, one);
        b.bounds_check(a, t, CheckKind::Upper);
        let _y = b.load(a, t);
        let one2 = b.iconst(1);
        let jn = b.binary(BinOp::Add, jv2, one2);
        b.set_local(j, jn);
        b.jump(head);
        b.switch_to_block(exit);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn figure3_shape_is_reproduced() {
        let mut f = figure3_like();
        split_critical_edges(&mut f);
        promote_locals(&mut f).unwrap();
        let stats = insert_pi_nodes(&mut f);
        verify_ssa(&f).unwrap();

        // Branch πs: j and limit on both edges of the loop test → 4.
        assert_eq!(stats.branch_pis, 4);
        // Check πs: one per bounds check → 2.
        assert_eq!(stats.check_pis, 2);

        // The load after the first check must use the π version of j,
        // not the φ version (constraint C5 attaches to the π name).
        let text = f.to_string();
        assert!(text.contains("pi"), "{text}");
    }

    #[test]
    fn check_pi_feeds_following_uses_and_backedge_phi() {
        let mut f = figure3_like();
        split_critical_edges(&mut f);
        promote_locals(&mut f).unwrap();
        insert_pi_nodes(&mut f);

        // Find the loop-head φ for j and its backedge argument; that
        // argument must be the increment, whose lhs is a π version (the
        // chained rename of j through branch-π and check-π).
        let mut found = false;
        for b in f.blocks() {
            for &id in f.block(b).insts() {
                if let InstKind::Phi { args } = &f.inst(id).kind {
                    for (_, v) in args {
                        if let abcd_ir::ValueDef::Inst(def) = f.value_def(*v) {
                            if let InstKind::Binary {
                                op: BinOp::Add,
                                lhs,
                                ..
                            } = f.inst(def).kind
                            {
                                // lhs must be π-defined.
                                if let abcd_ir::ValueDef::Inst(d2) = f.value_def(lhs) {
                                    if matches!(f.inst(d2).kind, InstKind::Pi { .. }) {
                                        found = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(found, "backedge increment should flow through a π:\n{f}");
    }

    #[test]
    fn non_compare_branches_get_no_pis() {
        let mut b = FunctionBuilder::new("f", vec![Type::Bool], None);
        let c = b.param(0);
        let (t, e) = (b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to_block(t);
        b.ret(None);
        b.switch_to_block(e);
        b.ret(None);
        let mut f = b.finish().unwrap();
        let stats = insert_pi_nodes(&mut f);
        assert_eq!(stats, PiStats::default());
    }

    #[test]
    fn equal_operands_get_single_pi() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], None);
        let x = b.param(0);
        let c = b.compare(CmpOp::Lt, x, x);
        let (t, e) = (b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to_block(t);
        b.ret(None);
        b.switch_to_block(e);
        b.ret(None);
        let mut f = b.finish().unwrap();
        let stats = insert_pi_nodes(&mut f);
        assert_eq!(stats.branch_pis, 2); // one per edge
        verify_ssa(&f).unwrap();
    }
}
