//! SSA and extended-SSA (e-SSA) construction for the ABCD IR.
//!
//! The ABCD paper assumes its input "to be already available" in SSA form
//! and extends it with π-assignments (§3). This crate supplies the whole
//! chain:
//!
//! 1. [`DomTree`] — dominator tree and dominance frontiers
//!    (Cooper–Harvey–Kennedy),
//! 2. [`split_critical_edges`] — so π-assignments and PRE insertions have an
//!    edge block to live in,
//! 3. [`promote_locals`] — classic Cytron-style SSA construction over the
//!    IR's `get_local`/`set_local` layer (pruned φ placement + renaming),
//! 4. [`insert_pi_nodes`] — e-SSA π-assignment insertion and threading,
//! 5. [`verify_ssa`] — definition-dominates-use checking used throughout the
//!    test suite.
//!
//! [`to_essa`] runs 2–4 in order.
//!
//! # Example
//!
//! ```
//! use abcd_ir::{FunctionBuilder, Type, CheckKind};
//! use abcd_ssa::to_essa;
//!
//! let mut b = FunctionBuilder::new("f", vec![Type::array_of(Type::Int)], Some(Type::Int));
//! let a = b.param(0);
//! let i = b.iconst(3);
//! b.bounds_check(a, i, CheckKind::Upper);
//! let x = b.load(a, i);
//! b.ret(Some(x));
//! let mut f = b.finish()?;
//! let stats = to_essa(&mut f)?;
//! assert_eq!(stats.pi.check_pis, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dom;
mod essa;
mod liveness;
mod mem2reg;
mod split;
mod verify;

pub use dom::{iterated_dominance_frontier, DomTree};
pub use essa::{insert_pi_nodes, PiStats};
pub use liveness::LocalLiveness;
pub use mem2reg::{promote_locals, SsaError};
pub use split::{split_critical_edges, split_looping_entry};
pub use verify::{verify_ssa, SsaViolation};

/// Statistics from the full [`to_essa`] pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EssaStats {
    /// Critical edges split.
    pub edges_split: usize,
    /// π-insertion statistics.
    pub pi: PiStats,
}

/// Converts a pre-SSA function (locals form) to e-SSA:
/// splits critical edges, promotes locals to SSA, inserts π-assignments.
///
/// # Errors
///
/// Propagates [`SsaError`] from SSA construction (e.g. a read of a local
/// that is never written on some path).
pub fn to_essa(func: &mut abcd_ir::Function) -> Result<EssaStats, SsaError> {
    let edges_split = split_critical_edges(func);
    promote_locals(func)?;
    let pi = insert_pi_nodes(func);
    debug_assert_eq!(verify_ssa(func), Ok(()));
    Ok(EssaStats { edges_split, pi })
}

/// Converts every function of a module to e-SSA.
///
/// # Errors
///
/// Returns the offending function's name alongside the error.
pub fn module_to_essa(module: &mut abcd_ir::Module) -> Result<(), (String, SsaError)> {
    let ids: Vec<_> = module.functions().map(|(id, _)| id).collect();
    for id in ids {
        let func = module.function_mut(id);
        let name = func.name().to_string();
        to_essa(func).map_err(|e| (name, e))?;
    }
    Ok(())
}
