//! Critical-edge splitting.
//!
//! A CFG edge is *critical* when its source has several successors and its
//! target has several predecessors. ABCD needs split edges twice over:
//! π-assignments conceptually live **on** branch out-edges (§3 of the paper),
//! and partial-redundancy elimination inserts compensating checks **on**
//! φ in-edges (§6). After splitting, both kinds of edge own a block.

use abcd_ir::{predecessors, Block, Function, InstKind, Terminator};

/// Splits every critical edge, returning the number of edges split.
///
/// For each critical edge `p → s` a fresh block `n` is created with a single
/// `jump s`; `p`'s terminator is retargeted to `n`, and φ-arguments in `s`
/// that named `p` are renamed to `n`.
pub fn split_critical_edges(func: &mut Function) -> usize {
    let preds = predecessors(func);
    let mut split = 0;

    for b in func.blocks().collect::<Vec<_>>() {
        let term = match func.block(b).terminator_opt() {
            Some(t) => t.clone(),
            None => continue,
        };
        let (then_dst, else_dst) = match term {
            Terminator::Branch {
                then_dst, else_dst, ..
            } => (then_dst, else_dst),
            _ => continue, // jumps/returns have at most one successor
        };

        // Split each target separately; `both same target` splits twice,
        // yielding two distinct edge blocks.
        let mut new_then = then_dst;
        let mut new_else = else_dst;
        if preds[then_dst.index()].len() > 1 || then_dst == else_dst {
            new_then = split_one(func, b, then_dst, true);
            split += 1;
        }
        if preds[else_dst.index()].len() > 1 || then_dst == else_dst {
            new_else = split_one(func, b, else_dst, false);
            split += 1;
        }
        if new_then != then_dst || new_else != else_dst {
            if let Terminator::Branch { cond, .. } = term {
                func.set_terminator(
                    b,
                    Terminator::Branch {
                        cond,
                        then_dst: new_then,
                        else_dst: new_else,
                    },
                );
            }
        }
    }
    split
}

fn split_one(func: &mut Function, pred: Block, succ: Block, _taken: bool) -> Block {
    let n = func.new_block();
    func.set_terminator(n, Terminator::Jump(succ));
    // Rename ONE φ-argument occurrence of `pred` in `succ` to `n` (edges are
    // split one at a time, so each call may only consume one occurrence).
    for &id in func.block(succ).insts().to_vec().iter() {
        let inst = func.inst_mut(id);
        if let InstKind::Phi { args } = &mut inst.kind {
            if let Some(slot) = args.iter_mut().find(|(p, _)| *p == pred) {
                slot.0 = n;
            }
        }
    }
    n
}

/// Ensures the entry block has no predecessors, splitting it if a back edge
/// targets it. SSA construction requires this: a φ in the entry block would
/// have no argument for the function-entry path, and the interpreter could
/// not evaluate it. Returns the block now holding the old entry's code, or
/// `None` if no split was needed.
pub fn split_looping_entry(func: &mut Function) -> Option<Block> {
    let entry = func.entry();
    if predecessors(func)[entry.index()].is_empty() {
        return None;
    }
    // Move the entry's contents into a fresh block.
    let moved = func.new_block();
    let insts = func.block(entry).insts().to_vec();
    let term = func.block(entry).terminator_opt().cloned();
    func.clear_block(entry);
    func.set_block_insts(moved, insts);
    if let Some(t) = term {
        func.set_terminator(moved, t);
    }
    // Retarget every edge that pointed at the entry (including the moved
    // block's own), and rename φ-arguments accordingly.
    for b in func.blocks().collect::<Vec<_>>() {
        if b == entry {
            continue;
        }
        if let Some(t) = func.block(b).terminator_opt() {
            let mut t = t.clone();
            t.map_successors(|d| if d == entry { moved } else { d });
            func.set_terminator(b, t);
        }
        for id in func.block(b).insts().to_vec() {
            if let InstKind::Phi { args } = &mut func.inst_mut(id).kind {
                for (p, _) in args.iter_mut() {
                    if *p == entry {
                        *p = moved;
                    }
                }
            }
        }
    }
    func.set_terminator(entry, Terminator::Jump(moved));
    Some(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{successors, verify_function, CmpOp, FunctionBuilder, Type};

    #[test]
    fn looping_entry_is_split() {
        // entry: c = cmp; br c, entry, exit  — entry is its own predecessor.
        let mut b = FunctionBuilder::new("l", vec![Type::Int], None);
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.compare(CmpOp::Lt, x, zero);
        let exit = b.new_block();
        let entry = b.current_block();
        b.branch(c, entry, exit);
        b.switch_to_block(exit);
        b.ret(None);
        let mut f = b.finish().unwrap();

        let moved = split_looping_entry(&mut f).expect("split happened");
        verify_function(&f, None).unwrap();
        assert_eq!(successors(&f, f.entry()), vec![moved]);
        assert!(predecessors(&f)[f.entry().index()].is_empty());
        // The loop edge now targets the moved block.
        assert!(successors(&f, moved).contains(&moved));
        // Idempotent.
        assert_eq!(split_looping_entry(&mut f), None);
    }

    #[test]
    fn splits_branch_into_join() {
        // entry --(branch)--> {a, join}; a -> join.  Edge entry→join is critical.
        let mut b = FunctionBuilder::new("s", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.compare(CmpOp::Lt, x, zero);
        let a = b.new_block();
        let join = b.new_block();
        b.branch(c, a, join);
        b.switch_to_block(a);
        b.jump(join);
        b.switch_to_block(join);
        let m = b.phi(vec![(a, zero), (b.func().entry(), x)]);
        b.ret(Some(m));
        let mut f = b.finish().unwrap();

        assert_eq!(split_critical_edges(&mut f), 1);
        verify_function(&f, None).unwrap();
        // The entry's else-successor is now a fresh block that jumps to join.
        let succs = successors(&f, f.entry());
        assert_eq!(succs[0], a);
        let edge_block = succs[1];
        assert_ne!(edge_block, join);
        assert_eq!(successors(&f, edge_block), vec![join]);
        // Re-splitting does nothing.
        assert_eq!(split_critical_edges(&mut f), 0);
    }

    #[test]
    fn splits_both_edges_of_same_target_branch() {
        let mut b = FunctionBuilder::new("s", vec![Type::Bool], None);
        let c = b.param(0);
        let t = b.new_block();
        b.branch(c, t, t);
        b.switch_to_block(t);
        b.ret(None);
        let mut f = b.finish().unwrap();
        assert_eq!(split_critical_edges(&mut f), 2);
        verify_function(&f, None).unwrap();
        let succs = successors(&f, f.entry());
        assert_ne!(succs[0], succs[1]);
        assert_eq!(successors(&f, succs[0]), vec![t]);
        assert_eq!(successors(&f, succs[1]), vec![t]);
    }

    #[test]
    fn loop_backedge_from_branch_is_split() {
        // head -> {body, exit}; body -> head (head has preds entry+body).
        let mut b = FunctionBuilder::new("l", vec![Type::Bool], None);
        let c = b.param(0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to_block(head);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        b.jump(head);
        b.switch_to_block(exit);
        b.ret(None);
        let mut f = b.finish().unwrap();
        // No critical edges: head→body (body has 1 pred), head→exit (1 pred).
        assert_eq!(split_critical_edges(&mut f), 0);
    }
}
