//! SSA construction: promotion of local slots to SSA values.
//!
//! This is the classic Cytron et al. algorithm the paper assumes has already
//! run ([CFR+91]): φ-instructions are placed at the iterated dominance
//! frontier of each local's definition blocks (pruned by liveness), then a
//! dominator-tree walk renames `get_local`/`set_local` into pure value flow.

use crate::dom::{iterated_dominance_frontier, DomTree};
use crate::liveness::LocalLiveness;
use abcd_ir::{successors, Block, Function, InstId, InstKind, Local, Value, VerifyError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An SSA-construction failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SsaError {
    /// A local is read on a path where it was never written.
    ///
    /// The frontend enforces definite assignment, so this indicates a
    /// malformed hand-built function.
    UndefinedLocal {
        /// The offending local.
        local: Local,
        /// The block containing the read (or needing the φ argument).
        block: Block,
    },
    /// The input function failed structural verification.
    Malformed(VerifyError),
}

impl fmt::Display for SsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsaError::UndefinedLocal { local, block } => {
                write!(f, "local {local} read before any write in {block}")
            }
            SsaError::Malformed(e) => write!(f, "malformed input function: {e}"),
        }
    }
}

impl Error for SsaError {}

impl From<VerifyError> for SsaError {
    fn from(e: VerifyError) -> Self {
        SsaError::Malformed(e)
    }
}

/// Promotes every local slot to SSA values, placing pruned φs and removing
/// all `get_local`/`set_local` instructions.
///
/// Critical edges should be split first (see
/// [`split_critical_edges`](crate::split_critical_edges)) so that later
/// passes can attribute φ-arguments to unique edges.
///
/// # Errors
///
/// Returns [`SsaError::UndefinedLocal`] if any path reads an unwritten local,
/// or [`SsaError::Malformed`] if the input fails structural verification.
pub fn promote_locals(func: &mut Function) -> Result<(), SsaError> {
    abcd_ir::verify_function(func, None)?;
    if func.local_count() == 0 {
        return Ok(());
    }
    // A φ can never live in the entry block (there is no incoming edge for
    // the function-entry path); split a self-looping entry first.
    crate::split::split_looping_entry(func);

    let dt = DomTree::compute(func);
    let df = dt.dominance_frontiers(func);
    let live = LocalLiveness::compute(func);

    // 1. Definition blocks per local.
    let mut def_blocks: Vec<Vec<Block>> = vec![Vec::new(); func.local_count()];
    for b in func.blocks() {
        for &id in func.block(b).insts() {
            if let InstKind::SetLocal { local, .. } = func.inst(id).kind {
                if def_blocks[local.index()].last() != Some(&b) {
                    def_blocks[local.index()].push(b);
                }
            }
        }
    }

    // 2. φ placement at liveness-pruned iterated dominance frontiers.
    let mut phi_of: HashMap<(Block, Local), InstId> = HashMap::new();
    for (l, defs) in def_blocks.iter().enumerate() {
        let local = Local::new(l);
        let ty = func.local_type(local).clone();
        for b in iterated_dominance_frontier(&df, defs) {
            if !dt.is_reachable(b) || !live.is_live_in(b, local) {
                continue;
            }
            let id = func.create_inst(InstKind::Phi { args: Vec::new() }, Some(ty.clone()));
            func.insert_inst(b, 0, id);
            phi_of.insert((b, local), id);
        }
    }

    // 3. Renaming walk over the dominator tree.
    let mut rename: Vec<Option<Value>> = vec![None; func.value_count() * 2];
    let resolve = |rename: &Vec<Option<Value>>, v: Value| -> Value {
        rename.get(v.index()).copied().flatten().unwrap_or(v)
    };
    let mut stacks: Vec<Vec<Value>> = vec![Vec::new(); func.local_count()];
    // (block, pushes-per-local) frames for popping on dom-tree exit.
    enum Step {
        Enter(Block),
        Exit(Vec<(Local, usize)>),
    }
    let mut work = vec![Step::Enter(func.entry())];
    let mut removed: Vec<(Block, InstId)> = Vec::new();

    while let Some(step) = work.pop() {
        match step {
            Step::Exit(pushes) => {
                for (l, n) in pushes {
                    let s = &mut stacks[l.index()];
                    s.truncate(s.len() - n);
                }
            }
            Step::Enter(b) => {
                let mut pushes: Vec<(Local, usize)> = Vec::new();
                let push = |stacks: &mut Vec<Vec<Value>>,
                            pushes: &mut Vec<(Local, usize)>,
                            l: Local,
                            v: Value| {
                    stacks[l.index()].push(v);
                    if let Some(entry) = pushes.iter_mut().find(|(pl, _)| *pl == l) {
                        entry.1 += 1;
                    } else {
                        pushes.push((l, 1));
                    }
                };

                let ids: Vec<InstId> = func.block(b).insts().to_vec();
                for id in ids {
                    // φs placed by step 2 define their local.
                    if let Some(((_, local), _)) = phi_of
                        .iter()
                        .find(|(_, pid)| **pid == id)
                        .map(|(k, v)| (*k, *v))
                    {
                        let result = func.inst(id).result.expect("phi has result");
                        push(&mut stacks, &mut pushes, local, result);
                        continue;
                    }
                    // Rewrite uses first (operands refer to earlier defs).
                    if rename.len() < func.value_count() {
                        rename.resize(func.value_count(), None);
                    }
                    let r = &rename;
                    func.inst_mut(id).kind.map_uses(|v| resolve(r, v));

                    match func.inst(id).kind.clone() {
                        InstKind::GetLocal { local } => {
                            let cur = *stacks[local.index()]
                                .last()
                                .ok_or(SsaError::UndefinedLocal { local, block: b })?;
                            let result = func.inst(id).result.expect("get_local has result");
                            if rename.len() <= result.index() {
                                rename.resize(func.value_count(), None);
                            }
                            rename[result.index()] = Some(cur);
                            removed.push((b, id));
                        }
                        InstKind::SetLocal { local, value } => {
                            push(&mut stacks, &mut pushes, local, value);
                            removed.push((b, id));
                        }
                        _ => {}
                    }
                }

                // Rewrite terminator uses.
                if rename.len() < func.value_count() {
                    rename.resize(func.value_count(), None);
                }
                {
                    let r = rename.clone();
                    if let Some(term) = func.block(b).terminator_opt() {
                        let mut t = term.clone();
                        t.map_uses(|v| resolve(&r, v));
                        func.set_terminator(b, t);
                    }
                }

                // Fill φ arguments of successors for this edge.
                for s in successors(func, b) {
                    let phis: Vec<(Local, InstId)> = phi_of
                        .iter()
                        .filter(|((blk, _), _)| *blk == s)
                        .map(|((_, l), id)| (*l, *id))
                        .collect();
                    for (local, id) in phis {
                        let cur = *stacks[local.index()]
                            .last()
                            .ok_or(SsaError::UndefinedLocal { local, block: s })?;
                        if let InstKind::Phi { args } = &mut func.inst_mut(id).kind {
                            args.push((b, cur));
                        }
                    }
                }

                work.push(Step::Exit(pushes));
                for &c in dt.children(b) {
                    work.push(Step::Enter(c));
                }
            }
        }
    }

    // 4. Unlink the promoted instructions.
    for (b, id) in removed {
        func.remove_inst(b, id);
    }

    // Unreachable blocks were never renamed (stale locals ops, and their
    // out-edges would confuse φ/predecessor agreement): clear them.
    for b in func.blocks().collect::<Vec<_>>() {
        if !dt.is_reachable(b) {
            func.clear_block(b);
        }
    }

    abcd_ir::verify_function(func, None)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{BinOp, CheckKind, CmpOp, FunctionBuilder, Terminator, Type};

    /// i = 0; s = 0; while (i < n) { s = s + i; i = i + 1 } return s;
    fn loop_func() -> Function {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let n = b.param(0);
        let i = b.new_local(Type::Int);
        let s = b.new_local(Type::Int);
        let zero = b.iconst(0);
        b.set_local(i, zero);
        b.set_local(s, zero);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to_block(head);
        let iv = b.get_local(i);
        let c = b.compare(CmpOp::Lt, iv, n);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        let sv = b.get_local(s);
        let iv2 = b.get_local(i);
        let sum = b.binary(BinOp::Add, sv, iv2);
        b.set_local(s, sum);
        let one = b.iconst(1);
        let inc = b.binary(BinOp::Add, iv2, one);
        b.set_local(i, inc);
        b.jump(head);
        b.switch_to_block(exit);
        let out = b.get_local(s);
        b.ret(Some(out));
        b.finish().unwrap()
    }

    fn count_kind(f: &Function, pred: impl Fn(&InstKind) -> bool) -> usize {
        f.blocks()
            .flat_map(|b| f.block(b).insts().to_vec())
            .filter(|&id| pred(&f.inst(id).kind))
            .count()
    }

    #[test]
    fn loop_gets_two_phis_at_head() {
        let mut f = loop_func();
        promote_locals(&mut f).unwrap();
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Phi { .. })), 2);
        assert_eq!(
            count_kind(&f, |k| matches!(k, InstKind::GetLocal { .. })),
            0
        );
        assert_eq!(
            count_kind(&f, |k| matches!(k, InstKind::SetLocal { .. })),
            0
        );
        crate::verify_ssa(&f).unwrap();
    }

    #[test]
    fn phi_args_name_correct_predecessors() {
        let mut f = loop_func();
        promote_locals(&mut f).unwrap();
        let head = Block::new(1);
        for &id in f.block(head).insts() {
            if let InstKind::Phi { args } = &f.inst(id).kind {
                let mut preds: Vec<Block> = args.iter().map(|(p, _)| *p).collect();
                preds.sort();
                assert_eq!(preds, vec![f.entry(), Block::new(2)]);
            }
        }
    }

    #[test]
    fn straightline_needs_no_phi() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let l = b.new_local(Type::Int);
        b.set_local(l, x);
        let v = b.get_local(l);
        let one = b.iconst(1);
        let y = b.binary(BinOp::Add, v, one);
        b.set_local(l, y);
        let out = b.get_local(l);
        b.ret(Some(out));
        let mut f = b.finish().unwrap();
        promote_locals(&mut f).unwrap();
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Phi { .. })), 0);
        // return now uses the add directly
        match f.block(f.entry()).terminator() {
            Terminator::Return(Some(v)) => assert_eq!(*v, y),
            t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn dead_local_in_branch_gets_no_phi() {
        // if (p) { t = 1 } return 0;  — t dead at join, pruning kills the φ.
        let mut b = FunctionBuilder::new("f", vec![Type::Bool], Some(Type::Int));
        let p = b.param(0);
        let t = b.new_local(Type::Int);
        let (then_b, join) = (b.new_block(), b.new_block());
        b.branch(p, then_b, join);
        b.switch_to_block(then_b);
        let one = b.iconst(1);
        b.set_local(t, one);
        b.jump(join);
        b.switch_to_block(join);
        let zero = b.iconst(0);
        b.ret(Some(zero));
        let mut f = b.finish().unwrap();
        promote_locals(&mut f).unwrap();
        assert_eq!(count_kind(&f, |k| matches!(k, InstKind::Phi { .. })), 0);
    }

    #[test]
    fn undefined_read_is_reported() {
        let mut b = FunctionBuilder::new("f", vec![], Some(Type::Int));
        let l = b.new_local(Type::Int);
        let v = b.get_local(l);
        b.ret(Some(v));
        let mut f = b.finish().unwrap();
        assert!(matches!(
            promote_locals(&mut f),
            Err(SsaError::UndefinedLocal { .. })
        ));
    }

    #[test]
    fn checks_survive_promotion() {
        let mut b = FunctionBuilder::new("f", vec![Type::array_of(Type::Int)], Some(Type::Int));
        let a = b.param(0);
        let l = b.new_local(Type::Int);
        let zero = b.iconst(0);
        b.set_local(l, zero);
        let iv = b.get_local(l);
        b.bounds_check(a, iv, CheckKind::Upper);
        let x = b.load(a, iv);
        b.ret(Some(x));
        let mut f = b.finish().unwrap();
        promote_locals(&mut f).unwrap();
        assert_eq!(f.count_checks(), (1, 0, 0));
    }
}
