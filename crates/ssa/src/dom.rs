//! Dominator trees and dominance frontiers.
//!
//! Uses the Cooper–Harvey–Kennedy "engineered" iterative algorithm
//! (*A Simple, Fast Dominance Algorithm*, 2001), which the original Cytron
//! et al. SSA construction the ABCD paper cites ([CFR+91]) predates but is
//! equivalent to and simpler than Lengauer–Tarjan at compiler-IR sizes.

use abcd_ir::{predecessors, reverse_postorder, Block, Function};
use std::collections::HashSet;

/// The dominator tree of a function's CFG.
///
/// Only reachable blocks participate; queries about unreachable blocks
/// return `None`/`false`.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block (entry's idom is itself).
    idom: Vec<Option<Block>>,
    /// Blocks in reverse postorder.
    rpo: Vec<Block>,
    /// Children in the dominator tree.
    children: Vec<Vec<Block>>,
    /// Depth in the dominator tree (entry = 0).
    depth: Vec<usize>,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn compute(func: &Function) -> DomTree {
        let n = func.block_count();
        let rpo = reverse_postorder(func);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = predecessors(func);
        let entry = func.entry();

        let mut idom: Vec<Option<Block>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<Block> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut children = vec![Vec::new(); n];
        for &b in &rpo {
            if b != entry {
                if let Some(p) = idom[b.index()] {
                    children[p.index()].push(b);
                }
            }
        }
        let mut depth = vec![0usize; n];
        for &b in &rpo {
            if b != entry {
                if let Some(p) = idom[b.index()] {
                    depth[b.index()] = depth[p.index()] + 1;
                }
            }
        }

        DomTree {
            idom,
            rpo,
            children,
            depth,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry block or
    /// unreachable blocks).
    pub fn idom(&self, b: Block) -> Option<Block> {
        match self.idom[b.index()] {
            Some(p) if p != b => Some(p),
            _ => None,
        }
    }

    /// Returns `true` if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: Block) -> bool {
        self.idom[b.index()].is_some()
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        while self.depth[cur.index()] > self.depth[a.index()] {
            cur = self.idom[cur.index()].unwrap();
        }
        cur == a
    }

    /// Returns `true` if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: Block, b: Block) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Blocks in reverse postorder (reachable only).
    pub fn rpo(&self) -> &[Block] {
        &self.rpo
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: Block) -> &[Block] {
        &self.children[b.index()]
    }

    /// A preorder walk of the dominator tree from the entry.
    pub fn preorder(&self) -> Vec<Block> {
        let entry = self.rpo[0];
        let mut out = Vec::with_capacity(self.rpo.len());
        let mut stack = vec![entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children(b) {
                stack.push(c);
            }
        }
        out
    }

    /// The dominance frontier of every block.
    ///
    /// `DF(b)` is the set of blocks `y` such that `b` dominates a predecessor
    /// of `y` but does not strictly dominate `y` — the classic φ-placement
    /// set of Cytron et al.
    pub fn dominance_frontiers(&self, func: &Function) -> Vec<Vec<Block>> {
        let n = func.block_count();
        let entry = func.entry();
        let preds = predecessors(func);
        let mut df: Vec<HashSet<Block>> = vec![HashSet::new(); n];
        for &b in &self.rpo {
            for &p in &preds[b.index()] {
                if !self.is_reachable(p) {
                    continue;
                }
                // Walk p's dominator chain, adding b until (exclusively)
                // idom(b). The entry block has no strict dominators, so for
                // b == entry the walk runs to the root — which makes a
                // self-looping entry a member of its own frontier, a corner
                // the classic `runner != idom[b]` loop misses because of
                // the `idom(entry) = entry` sentinel.
                let mut runner = p;
                loop {
                    if b != entry && runner == self.idom[b.index()].unwrap() {
                        break;
                    }
                    df[runner.index()].insert(b);
                    if runner == entry {
                        break;
                    }
                    runner = self.idom[runner.index()].unwrap();
                }
            }
        }
        df.into_iter()
            .map(|s| {
                let mut v: Vec<Block> = s.into_iter().collect();
                v.sort();
                v
            })
            .collect()
    }
}

fn intersect(idom: &[Option<Block>], rpo_index: &[usize], a: Block, b: Block) -> Block {
    let mut x = a;
    let mut y = b;
    while x != y {
        while rpo_index[x.index()] > rpo_index[y.index()] {
            x = idom[x.index()].unwrap();
        }
        while rpo_index[y.index()] > rpo_index[x.index()] {
            y = idom[y.index()].unwrap();
        }
    }
    x
}

/// The iterated dominance frontier of a set of blocks — where φs must be
/// placed for a variable defined in exactly those blocks.
pub fn iterated_dominance_frontier(df: &[Vec<Block>], defs: &[Block]) -> Vec<Block> {
    let mut result: HashSet<Block> = HashSet::new();
    let mut work: Vec<Block> = defs.to_vec();
    let mut enqueued: HashSet<Block> = defs.iter().copied().collect();
    while let Some(b) = work.pop() {
        for &y in &df[b.index()] {
            if result.insert(y) && enqueued.insert(y) {
                work.push(y);
            }
        }
    }
    let mut v: Vec<Block> = result.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{FunctionBuilder, Type};

    /// The classic CFG from the Cooper–Harvey–Kennedy paper (Fig. 4),
    /// adapted: 0 → {1,2}; 1 → 3; 2 → {3,4}; 3 → 5; 4 → 5; 5 exits.
    fn chk_cfg() -> Function {
        let mut b = FunctionBuilder::new("chk", vec![Type::Bool], None);
        let c = b.param(0);
        let bb: Vec<_> = (0..5).map(|_| b.new_block()).collect();
        // entry = bb0 of function; named blocks are bb[0]..bb[4] = 1..5
        b.branch(c, bb[0], bb[1]);
        b.switch_to_block(bb[0]); // 1
        b.jump(bb[2]);
        b.switch_to_block(bb[1]); // 2
        b.branch(c, bb[2], bb[3]);
        b.switch_to_block(bb[2]); // 3
        b.jump(bb[4]);
        b.switch_to_block(bb[3]); // 4
        b.jump(bb[4]);
        b.switch_to_block(bb[4]); // 5
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn idoms_of_diamondish_cfg() {
        let f = chk_cfg();
        let dt = DomTree::compute(&f);
        let e = f.entry();
        // Blocks 1..=5 in creation order are Block 1..=5.
        assert_eq!(dt.idom(Block::new(1)), Some(e));
        assert_eq!(dt.idom(Block::new(2)), Some(e));
        assert_eq!(dt.idom(Block::new(3)), Some(e)); // joined from 1 and 2
        assert_eq!(dt.idom(Block::new(4)), Some(Block::new(2)));
        assert_eq!(dt.idom(Block::new(5)), Some(e));
        assert!(dt.dominates(e, Block::new(5)));
        assert!(dt.dominates(Block::new(3), Block::new(3)));
        assert!(!dt.strictly_dominates(Block::new(3), Block::new(3)));
        assert!(!dt.dominates(Block::new(2), Block::new(3)));
    }

    #[test]
    fn frontiers_of_diamondish_cfg() {
        let f = chk_cfg();
        let dt = DomTree::compute(&f);
        let df = dt.dominance_frontiers(&f);
        assert_eq!(df[Block::new(1).index()], vec![Block::new(3)]);
        assert_eq!(
            df[Block::new(2).index()],
            vec![Block::new(3), Block::new(5)]
        );
        assert_eq!(df[Block::new(4).index()], vec![Block::new(5)]);
        assert_eq!(df[f.entry().index()], Vec::<Block>::new());
    }

    #[test]
    fn loop_dominators() {
        // entry → head; head → {body, exit}; body → head.
        let mut b = FunctionBuilder::new("l", vec![Type::Bool], None);
        let c = b.param(0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to_block(head);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        b.jump(head);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let dt = DomTree::compute(&f);
        assert_eq!(dt.idom(head), Some(f.entry()));
        assert_eq!(dt.idom(body), Some(head));
        assert_eq!(dt.idom(exit), Some(head));
        // The loop head is in the frontier of the body (back edge) and of itself.
        let df = dt.dominance_frontiers(&f);
        assert_eq!(df[body.index()], vec![head]);
        assert_eq!(df[head.index()], vec![head]);
    }

    #[test]
    fn iterated_frontier_propagates() {
        let f = chk_cfg();
        let dt = DomTree::compute(&f);
        let df = dt.dominance_frontiers(&f);
        // A def in block 4 forces φ at 5 only.
        assert_eq!(
            iterated_dominance_frontier(&df, &[Block::new(4)]),
            vec![Block::new(5)]
        );
        // A def in block 1 forces φ at 3, and then (since 3's DF is {5}) at 5.
        assert_eq!(
            iterated_dominance_frontier(&df, &[Block::new(1)]),
            vec![Block::new(3), Block::new(5)]
        );
    }

    #[test]
    fn unreachable_blocks_are_not_dominated() {
        let mut b = FunctionBuilder::new("u", vec![], None);
        b.ret(None);
        let dead = b.new_block();
        b.switch_to_block(dead);
        b.ret(None);
        let f = b.finish().unwrap();
        let dt = DomTree::compute(&f);
        assert!(!dt.is_reachable(dead));
        assert!(!dt.dominates(f.entry(), dead));
        assert_eq!(dt.idom(dead), None);
    }

    #[test]
    fn preorder_visits_all_reachable() {
        let f = chk_cfg();
        let dt = DomTree::compute(&f);
        let pre = dt.preorder();
        assert_eq!(pre.len(), 6);
        assert_eq!(pre[0], f.entry());
    }
}
