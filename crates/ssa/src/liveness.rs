//! Backward liveness of local slots, used to prune φ-placement.
//!
//! Semi-pruned SSA construction only places a φ for a local at a join where
//! the local is live-in; this analysis provides the live-in sets.

use abcd_ir::{Block, Function, InstKind, Local};

/// Per-block live-in information for locals.
#[derive(Clone, Debug)]
pub struct LocalLiveness {
    /// `live_in[b][l]` — is local `l` live at entry of block `b`?
    live_in: Vec<Vec<bool>>,
}

impl LocalLiveness {
    /// Computes liveness of all locals via iterative backward dataflow.
    pub fn compute(func: &Function) -> LocalLiveness {
        let nb = func.block_count();
        let nl = func.local_count();
        // Per-block gen (upward-exposed use) and kill (def) sets.
        let mut gen = vec![vec![false; nl]; nb];
        let mut kill = vec![vec![false; nl]; nb];
        for b in func.blocks() {
            for &id in func.block(b).insts() {
                match &func.inst(id).kind {
                    InstKind::GetLocal { local } if !kill[b.index()][local.index()] => {
                        gen[b.index()][local.index()] = true;
                    }
                    InstKind::SetLocal { local, .. } => {
                        kill[b.index()][local.index()] = true;
                    }
                    _ => {}
                }
            }
        }

        let mut live_in = gen.clone();
        let mut live_out = vec![vec![false; nl]; nb];
        let mut changed = true;
        while changed {
            changed = false;
            // Backward problem: iterate in reverse block order (any order
            // converges; reverse tends to converge fast).
            for b in func.blocks().rev() {
                let bi = b.index();
                // live_out[b] = union of live_in of successors.
                for s in abcd_ir::successors(func, b) {
                    for l in 0..nl {
                        if live_in[s.index()][l] && !live_out[bi][l] {
                            live_out[bi][l] = true;
                            changed = true;
                        }
                    }
                }
                for l in 0..nl {
                    let v = gen[bi][l] || (live_out[bi][l] && !kill[bi][l]);
                    if v != live_in[bi][l] {
                        live_in[bi][l] = v;
                        changed = true;
                    }
                }
            }
        }
        LocalLiveness { live_in }
    }

    /// Is local `l` live at the entry of block `b`?
    pub fn is_live_in(&self, b: Block, l: Local) -> bool {
        self.live_in[b.index()][l.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{CmpOp, FunctionBuilder, Type};

    #[test]
    fn loop_variable_is_live_at_head() {
        // i = 0; while (i < n) { i = i + 1 }  — i live-in at head and body.
        let mut b = FunctionBuilder::new("f", vec![Type::Int], None);
        let n = b.param(0);
        let i = b.new_local(Type::Int);
        let zero = b.iconst(0);
        b.set_local(i, zero);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to_block(head);
        let iv = b.get_local(i);
        let c = b.compare(CmpOp::Lt, iv, n);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        let iv2 = b.get_local(i);
        let one = b.iconst(1);
        let inc = b.binary(abcd_ir::BinOp::Add, iv2, one);
        b.set_local(i, inc);
        b.jump(head);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish().unwrap();

        let lv = LocalLiveness::compute(&f);
        assert!(lv.is_live_in(head, i));
        assert!(lv.is_live_in(body, i));
        assert!(!lv.is_live_in(f.entry(), i)); // defined before use in entry
        assert!(!lv.is_live_in(exit, i));
    }

    #[test]
    fn dead_after_last_use() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let l = b.new_local(Type::Int);
        let c = b.iconst(1);
        b.set_local(l, c);
        let next = b.new_block();
        b.jump(next);
        b.switch_to_block(next);
        b.ret(None);
        let f = b.finish().unwrap();
        let lv = LocalLiveness::compute(&f);
        assert!(!lv.is_live_in(next, l));
    }
}
