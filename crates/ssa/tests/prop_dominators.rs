//! Property tests for the dominator machinery: the Cooper–Harvey–Kennedy
//! tree must agree with a naive fixed-point dominator-set computation on
//! random CFGs, and dominance frontiers must satisfy their defining
//! property.

use abcd_ir::{Block, Function, FunctionBuilder, Type};
use abcd_ssa::DomTree;
use proptest::prelude::*;
use std::collections::HashSet;

/// Builds a random CFG with `n` blocks; each block ends in a return, jump,
/// or branch to targets drawn from `edges`.
fn build_cfg(n: usize, edges: &[(u8, u8)]) -> Function {
    let mut b = FunctionBuilder::new("g", vec![Type::Bool], None);
    let cond = b.param(0);
    let blocks: Vec<Block> = std::iter::once(b.current_block())
        .chain((1..n).map(|_| b.new_block()))
        .collect();

    // Group the requested edges per source block.
    let mut out: Vec<Vec<Block>> = vec![Vec::new(); n];
    for (s, t) in edges {
        let s = *s as usize % n;
        let t = *t as usize % n;
        if out[s].len() < 2 {
            out[s].push(blocks[t]);
        }
    }
    for (i, &blk) in blocks.iter().enumerate() {
        b.switch_to_block(blk);
        match out[i].as_slice() {
            [] => b.ret(None),
            [d] => b.jump(*d),
            [d1, d2] => b.branch(cond, *d1, *d2),
            _ => unreachable!(),
        }
    }
    b.finish().expect("random CFG verifies")
}

/// Naive dominators: dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(preds).
fn naive_dominators(func: &Function) -> Vec<Option<HashSet<Block>>> {
    let n = func.block_count();
    let preds = abcd_ir::predecessors(func);
    let all: HashSet<Block> = func.blocks().collect();
    let entry = func.entry();
    let mut dom: Vec<Option<HashSet<Block>>> = vec![None; n];
    dom[entry.index()] = Some([entry].into_iter().collect());
    let mut changed = true;
    while changed {
        changed = false;
        for b in func.blocks() {
            if b == entry {
                continue;
            }
            let mut inter: Option<HashSet<Block>> = None;
            for p in &preds[b.index()] {
                if let Some(dp) = &dom[p.index()] {
                    inter = Some(match inter {
                        None => dp.clone(),
                        Some(acc) => acc.intersection(dp).copied().collect(),
                    });
                }
            }
            if let Some(mut set) = inter {
                set.insert(b);
                if dom[b.index()].as_ref() != Some(&set) {
                    dom[b.index()] = Some(set);
                    changed = true;
                }
            }
        }
    }
    let _ = all;
    dom
}

proptest! {
    #[test]
    fn chk_agrees_with_naive_dominators(
        n in 1usize..12,
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..20),
    ) {
        let func = build_cfg(n, &edges);
        let dt = DomTree::compute(&func);
        let naive = naive_dominators(&func);

        for a in func.blocks() {
            for b in func.blocks() {
                let fast = dt.dominates(a, b);
                let slow = naive[b.index()]
                    .as_ref()
                    .map(|s| s.contains(&a))
                    .unwrap_or(false);
                prop_assert_eq!(fast, slow, "dominates({:?},{:?}) fast={} slow={}", a, b, fast, slow);
            }
        }
        // idom is the unique closest strict dominator.
        for b in func.blocks() {
            if let Some(idom) = dt.idom(b) {
                prop_assert!(dt.strictly_dominates(idom, b));
                // every other strict dominator of b dominates idom
                for d in func.blocks() {
                    if d != b && dt.strictly_dominates(d, b) {
                        prop_assert!(dt.dominates(d, idom));
                    }
                }
            }
        }
    }

    #[test]
    fn dominance_frontier_matches_definition(
        n in 1usize..10,
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..16),
    ) {
        let func = build_cfg(n, &edges);
        let dt = DomTree::compute(&func);
        let df = dt.dominance_frontiers(&func);
        let preds = abcd_ir::predecessors(&func);

        for b in func.blocks() {
            if !dt.is_reachable(b) {
                continue;
            }
            for y in func.blocks() {
                if !dt.is_reachable(y) {
                    continue;
                }
                // y ∈ DF(b) ⇔ b dominates a predecessor of y and b does not
                // strictly dominate y.
                let in_df = df[b.index()].contains(&y);
                let expected = preds[y.index()]
                    .iter()
                    .any(|p| dt.is_reachable(*p) && dt.dominates(b, *p))
                    && !dt.strictly_dominates(b, y);
                prop_assert_eq!(in_df, expected, "DF({:?}) vs {:?}", b, y);
            }
        }
    }

    #[test]
    fn critical_edge_split_leaves_no_critical_edges(
        n in 1usize..10,
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..16),
    ) {
        let mut func = build_cfg(n, &edges);
        abcd_ssa::split_critical_edges(&mut func);
        abcd_ir::verify_function(&func, None).expect("still verifies");
        let preds = abcd_ir::predecessors(&func);
        for b in func.blocks() {
            let succs = abcd_ir::successors(&func, b);
            if succs.len() > 1 {
                for s in succs {
                    prop_assert!(
                        preds[s.index()].len() <= 1,
                        "critical edge {:?} -> {:?} survived",
                        b,
                        s
                    );
                }
            }
        }
    }
}
