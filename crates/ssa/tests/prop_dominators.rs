//! Property tests for the dominator machinery: the Cooper–Harvey–Kennedy
//! tree must agree with a naive fixed-point dominator-set computation on
//! random CFGs, and dominance frontiers must satisfy their defining
//! property.
//!
//! Random CFGs come from a fixed-seed SplitMix64 stream, so the corpus is
//! deterministic and the suite needs no external crates.

use abcd_ir::{Block, Function, FunctionBuilder, Type};
use abcd_ssa::DomTree;
use std::collections::HashSet;

/// SplitMix64 — deterministic PRNG for corpus generation.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A random CFG shape: block count in `[1, max_n)` and up to
    /// `max_edges` random (source, target) byte pairs.
    fn cfg_shape(&mut self, max_n: u64, max_edges: u64) -> (usize, Vec<(u8, u8)>) {
        let n = 1 + self.below(max_n - 1) as usize;
        let e = self.below(max_edges + 1) as usize;
        let edges = (0..e)
            .map(|_| (self.next() as u8, self.next() as u8))
            .collect();
        (n, edges)
    }
}

/// Builds a random CFG with `n` blocks; each block ends in a return, jump,
/// or branch to targets drawn from `edges`.
fn build_cfg(n: usize, edges: &[(u8, u8)]) -> Function {
    let mut b = FunctionBuilder::new("g", vec![Type::Bool], None);
    let cond = b.param(0);
    let blocks: Vec<Block> = std::iter::once(b.current_block())
        .chain((1..n).map(|_| b.new_block()))
        .collect();

    // Group the requested edges per source block.
    let mut out: Vec<Vec<Block>> = vec![Vec::new(); n];
    for (s, t) in edges {
        let s = *s as usize % n;
        let t = *t as usize % n;
        if out[s].len() < 2 {
            out[s].push(blocks[t]);
        }
    }
    for (i, &blk) in blocks.iter().enumerate() {
        b.switch_to_block(blk);
        match out[i].as_slice() {
            [] => b.ret(None),
            [d] => b.jump(*d),
            [d1, d2] => b.branch(cond, *d1, *d2),
            _ => unreachable!(),
        }
    }
    b.finish().expect("random CFG verifies")
}

/// Naive dominators: dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(preds).
fn naive_dominators(func: &Function) -> Vec<Option<HashSet<Block>>> {
    let n = func.block_count();
    let preds = abcd_ir::predecessors(func);
    let entry = func.entry();
    let mut dom: Vec<Option<HashSet<Block>>> = vec![None; n];
    dom[entry.index()] = Some([entry].into_iter().collect());
    let mut changed = true;
    while changed {
        changed = false;
        for b in func.blocks() {
            if b == entry {
                continue;
            }
            let mut inter: Option<HashSet<Block>> = None;
            for p in &preds[b.index()] {
                if let Some(dp) = &dom[p.index()] {
                    inter = Some(match inter {
                        None => dp.clone(),
                        Some(acc) => acc.intersection(dp).copied().collect(),
                    });
                }
            }
            if let Some(mut set) = inter {
                set.insert(b);
                if dom[b.index()].as_ref() != Some(&set) {
                    dom[b.index()] = Some(set);
                    changed = true;
                }
            }
        }
    }
    dom
}

#[test]
fn chk_agrees_with_naive_dominators() {
    let mut rng = Rng(0xd0b1_0001);
    for _ in 0..192 {
        let (n, edges) = rng.cfg_shape(12, 20);
        let func = build_cfg(n, &edges);
        let dt = DomTree::compute(&func);
        let naive = naive_dominators(&func);

        for a in func.blocks() {
            for b in func.blocks() {
                let fast = dt.dominates(a, b);
                let slow = naive[b.index()]
                    .as_ref()
                    .map(|s| s.contains(&a))
                    .unwrap_or(false);
                assert_eq!(fast, slow, "dominates({a:?},{b:?}) fast={fast} slow={slow}");
            }
        }
        // idom is the unique closest strict dominator.
        for b in func.blocks() {
            if let Some(idom) = dt.idom(b) {
                assert!(dt.strictly_dominates(idom, b));
                // every other strict dominator of b dominates idom
                for d in func.blocks() {
                    if d != b && dt.strictly_dominates(d, b) {
                        assert!(dt.dominates(d, idom));
                    }
                }
            }
        }
    }
}

#[test]
fn dominance_frontier_matches_definition() {
    let mut rng = Rng(0xd0b1_0002);
    for _ in 0..192 {
        let (n, edges) = rng.cfg_shape(10, 16);
        let func = build_cfg(n, &edges);
        let dt = DomTree::compute(&func);
        let df = dt.dominance_frontiers(&func);
        let preds = abcd_ir::predecessors(&func);

        for b in func.blocks() {
            if !dt.is_reachable(b) {
                continue;
            }
            for y in func.blocks() {
                if !dt.is_reachable(y) {
                    continue;
                }
                // y ∈ DF(b) ⇔ b dominates a predecessor of y and b does not
                // strictly dominate y.
                let in_df = df[b.index()].contains(&y);
                let expected = preds[y.index()]
                    .iter()
                    .any(|p| dt.is_reachable(*p) && dt.dominates(b, *p))
                    && !dt.strictly_dominates(b, y);
                assert_eq!(in_df, expected, "DF({b:?}) vs {y:?}");
            }
        }
    }
}

#[test]
fn critical_edge_split_leaves_no_critical_edges() {
    let mut rng = Rng(0xd0b1_0003);
    for _ in 0..192 {
        let (n, edges) = rng.cfg_shape(10, 16);
        let mut func = build_cfg(n, &edges);
        abcd_ssa::split_critical_edges(&mut func);
        abcd_ir::verify_function(&func, None).expect("still verifies");
        let preds = abcd_ir::predecessors(&func);
        for b in func.blocks() {
            let succs = abcd_ir::successors(&func, b);
            if succs.len() > 1 {
                for s in succs {
                    assert!(
                        preds[s.index()].len() <= 1,
                        "critical edge {b:?} -> {s:?} survived"
                    );
                }
            }
        }
    }
}
