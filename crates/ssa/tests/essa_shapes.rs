//! e-SSA construction on tricky shapes: nested guards, π threading across
//! dominance regions, and interaction with SSA φs.

use abcd_frontend::compile;
use abcd_ir::{Function, InstKind, PiGuard};
use abcd_ssa::verify_ssa;

fn essa(src: &str) -> Function {
    let mut m = compile(src).unwrap();
    abcd_ssa::module_to_essa(&mut m).unwrap();
    let id = m.functions().next().unwrap().0;
    let f = m.function(id).clone();
    verify_ssa(&f).unwrap();
    f
}

fn count_pis(f: &Function, pred: impl Fn(&PiGuard) -> bool) -> usize {
    f.blocks()
        .flat_map(|b| f.block(b).insts().to_vec())
        .filter(|&id| match &f.inst(id).kind {
            InstKind::Pi { guard, .. } => pred(guard),
            _ => false,
        })
        .count()
}

#[test]
fn nested_guards_stack_pis() {
    let f = essa(
        "fn f(a: int[], i: int) -> int {
            if (i >= 0) {
                if (i < a.length) {
                    if (i > 2) {
                        return a[i];
                    }
                }
            }
            return 0;
        }",
    );
    // Three branches × two edges × (up to 2 int operands); the check adds
    // its own π pair (lower + upper).
    let branch = count_pis(&f, |g| matches!(g, PiGuard::Branch { .. }));
    let check = count_pis(&f, |g| matches!(g, PiGuard::Check { .. }));
    assert!(branch >= 10, "branch πs: {branch}\n{f}");
    assert_eq!(check, 2, "{f}");
    // The innermost load's index must be the full π chain: walking its
    // input chain hits at least 4 πs (3 branch levels + check πs).
    let mut load_index = None;
    for b in f.blocks() {
        for &id in f.block(b).insts() {
            if let InstKind::Load { index, .. } = f.inst(id).kind {
                load_index = Some(index);
            }
        }
    }
    let mut depth = 0;
    let mut cur = load_index.expect("load exists");
    while let abcd_ir::ValueDef::Inst(iid) = f.value_def(cur) {
        match &f.inst(iid).kind {
            InstKind::Pi { input, .. } => {
                depth += 1;
                cur = *input;
            }
            _ => break,
        }
    }
    assert!(depth >= 4, "π chain depth {depth}\n{f}");
}

#[test]
fn pi_does_not_leak_across_sibling_branches() {
    // π versions are scoped to the dominance region of their edge; this is
    // enforced structurally by `verify_ssa` (defs dominate uses) and
    // observationally: each arm computes with the *unrenamed* semantics.
    let mut m = compile(
        "fn f(a: int[], i: int) -> int {
            if (i < a.length) {
                if (i >= 0) { return a[i]; }
                return 0 - 1;
            } else {
                return i;
            }
        }",
    )
    .unwrap();
    abcd_ssa::module_to_essa(&mut m).unwrap();
    verify_ssa(m.function(m.function_by_name("f").unwrap())).unwrap();

    use abcd_vm::RtVal;
    for (i, expected) in [(1, 20), (7, 7), (-3, -1)] {
        let mut vm = abcd_vm::Vm::new(&m);
        let arr = vm.alloc_int_array(&[10, 20]);
        assert_eq!(
            vm.call_by_name("f", &[arr, RtVal::Int(i)]).unwrap(),
            Some(RtVal::Int(expected)),
            "i={i}"
        );
    }
}

#[test]
fn loop_condition_pis_feed_phi_backedges() {
    // Figure 3's essential property, on a while loop with a compound body.
    let f = essa(
        "fn f(a: int[]) -> int {
            let s: int = 0;
            let i: int = 0;
            while (i < a.length) {
                s = s + a[i];
                i = i + 2;
            }
            return s;
        }",
    );
    // The increment (i + 2) must consume a π version, and some φ argument
    // must be that increment — i.e. the π version travels the back edge.
    let mut ok = false;
    for b in f.blocks() {
        for &id in f.block(b).insts() {
            if let InstKind::Phi { args } = &f.inst(id).kind {
                for (_, v) in args {
                    if let abcd_ir::ValueDef::Inst(d) = f.value_def(*v) {
                        if let InstKind::Binary { lhs, .. } = f.inst(d).kind {
                            if let abcd_ir::ValueDef::Inst(d2) = f.value_def(lhs) {
                                if matches!(f.inst(d2).kind, InstKind::Pi { .. }) {
                                    ok = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    assert!(ok, "π version does not reach the loop φ:\n{f}");
}

#[test]
fn boolean_conditions_get_no_pis_but_still_verify() {
    let f = essa(
        "fn f(flag: bool, a: int[]) -> int {
            if (flag) { return a.length; }
            return 0;
        }",
    );
    assert_eq!(count_pis(&f, |_| true), 0);
}

#[test]
fn check_pi_chains_lower_then_upper() {
    let f = essa("fn f(a: int[], i: int) -> int { return a[i]; }");
    // lower check π feeds the upper check, whose π feeds the load.
    let mut sequence = Vec::new();
    for b in f.blocks() {
        for &id in f.block(b).insts() {
            match &f.inst(id).kind {
                InstKind::BoundsCheck { kind, .. } => sequence.push(format!("check:{kind:?}")),
                InstKind::Pi {
                    guard: PiGuard::Check { kind, .. },
                    ..
                } => sequence.push(format!("pi:{kind:?}")),
                InstKind::Load { .. } => sequence.push("load".into()),
                _ => {}
            }
        }
    }
    assert_eq!(
        sequence,
        vec!["check:Lower", "pi:Lower", "check:Upper", "pi:Upper", "load"],
        "{f}"
    );
}
