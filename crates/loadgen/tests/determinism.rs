//! The determinism contract: the offered load is a pure function of the
//! seed. No wall clock, no environment — two runs with the same seed
//! produce the byte-identical request sequence.

use abcd_loadgen::{corpus, schedule, Arrival};

#[test]
fn same_seed_same_schedule_byte_for_byte() {
    let a = schedule(42, 500, 150.0, 24, 1.2);
    let b = schedule(42, 500, 150.0, 24, 1.2);
    assert_eq!(a, b, "schedule must replay exactly");
    assert_eq!(a.len(), 500);
    assert!(
        a.windows(2).all(|w| w[0].at_us <= w[1].at_us),
        "arrivals are time-ordered"
    );
    assert!(
        a.iter().all(|arr| arr.corpus_idx < 24),
        "every pick lands in the corpus"
    );
}

#[test]
fn same_seed_same_corpus_byte_for_byte() {
    assert_eq!(corpus(42, 24), corpus(42, 24));
}

#[test]
fn different_seeds_offer_different_load() {
    let a = schedule(1, 200, 150.0, 24, 1.2);
    let b = schedule(2, 200, 150.0, 24, 1.2);
    assert_ne!(a, b);
    assert_ne!(corpus(1, 4), corpus(2, 4));
}

#[test]
fn zipf_skew_prefers_the_head() {
    let arrivals = schedule(42, 2000, 150.0, 24, 1.2);
    let head: usize = arrivals.iter().filter(|a| a.corpus_idx == 0).count();
    let tail: usize = arrivals.iter().filter(|a| a.corpus_idx == 23).count();
    assert!(
        head > 10 * tail.max(1),
        "rank 1 ({head}) should dwarf rank 24 ({tail})"
    );
}

#[test]
fn arrival_is_plain_data() {
    let a = Arrival {
        at_us: 7,
        corpus_idx: 3,
    };
    assert_eq!(a, a.clone());
}
