//! `loadgen` — replay deterministic synthetic traffic against `abcdd`.
//!
//! Default mode starts an in-process sharded server listening on both a
//! Unix-domain socket and a loopback TCP port, replays the identical
//! seeded schedule through the four `{uds,tcp} × {batch 1,8}` scenarios,
//! and writes the measured trajectory to `BENCH_abcdd.json`
//! (schema `abcd-bench-abcdd/1`). `--connect` instead targets an
//! already-running server with a single scenario.

use abcd::OptimizerOptions;
use abcd_loadgen::{
    bench_json, corpus, expected_outputs, run_scenario, schedule, BenchParams, ScenarioParams,
};
use abcd_server::{Endpoint, ListenAddr, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;

const HELP: &str = "\
loadgen — deterministic synthetic load for the abcdd service

USAGE:
    loadgen [options]                      in-process {uds,tcp}x{1,8} matrix
    loadgen --connect ADDR [--batch N]     one scenario vs a running server

OPTIONS:
    --out FILE         where to write the bench document
                       (default BENCH_abcdd.json)
    --seed N           master seed for corpus + schedule (default 42;
                       never wall-clock seeded — same seed, same offered
                       load, byte for byte)
    --requests N       requests per scenario (default 240)
    --clients N        concurrent client threads (default 4)
    --rate N           offered arrival rate per second, open loop
                       (default 150)
    --zipf-s X         zipf skew over the corpus (default 1.2)
    --corpus N         synthetic corpus size (default 24)
    --shards N         (in-process server) shard count (default 2)
    --workers N        (in-process server) workers per shard (default 1)
    --queue N          (in-process server) queue slots per shard
                       (default 32)
    --deadline MS      per-request deadline; tripping it fails open
    --verify           byte-check every reply against the one-shot
                       pipeline (differential guarantee; mismatch = error)
    --connect ADDR     external server: uds:/path.sock or tcp:host:port
    --batch N          (with --connect) requests per pipelined frame
                       (default 1)
    --help             this text

Exit code 0 when every scenario completed with zero errors, 1 otherwise.
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" | "--seed" | "--requests" | "--clients" | "--rate" | "--zipf-s"
            | "--corpus" | "--shards" | "--workers" | "--queue" | "--deadline" | "--connect"
            | "--batch" => i += 1,
            "--verify" => {}
            other => return Err(format!("unknown flag `{other}`\n{HELP}")),
        }
        i += 1;
    }
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let num = |flag: &str, default: u64| -> Result<u64, String> {
        match value_of(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("`{flag}` needs a number")),
        }
    };
    let fnum = |flag: &str, default: f64| -> Result<f64, String> {
        match value_of(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("`{flag}` needs a number")),
        }
    };

    let seed = num("--seed", 42)?;
    let requests = num("--requests", 240)? as usize;
    let clients = (num("--clients", 4)? as usize).max(1);
    let rate = fnum("--rate", 150.0)?;
    let zipf_s = fnum("--zipf-s", 1.2)?;
    let corpus_len = (num("--corpus", 24)? as usize).max(1);
    let shards = (num("--shards", 2)? as usize).max(1);
    let workers = (num("--workers", 1)? as usize).max(1);
    let queue = num("--queue", 32)? as usize;
    let deadline_ms = value_of("--deadline")
        .map(|v| v.parse().map_err(|_| "`--deadline` needs milliseconds"))
        .transpose()?;
    let out = value_of("--out").unwrap_or("BENCH_abcdd.json");

    let modules = corpus(seed, corpus_len);
    let options = OptimizerOptions::default();
    let expected = if args.iter().any(|a| a == "--verify") {
        eprintln!("loadgen: computing one-shot ground truth for {corpus_len} modules");
        Some(expected_outputs(&modules, options)?)
    } else {
        None
    };
    let offered = schedule(seed, requests, rate, corpus_len, zipf_s);

    let mut results = Vec::new();
    let (shards_doc, workers_doc);
    if let Some(spec) = value_of("--connect") {
        // External server: one scenario, transport taken from the spec.
        let endpoint = Endpoint::parse(spec).map_err(|e| format!("--connect: {e}"))?;
        let batch = (num("--batch", 1)? as usize).max(1);
        let name = format!(
            "{}_batch{batch}",
            match &endpoint {
                Endpoint::Uds(_) => "uds",
                Endpoint::Tcp(_) => "tcp",
            }
        );
        eprintln!("loadgen: {name} vs {} …", endpoint.describe());
        results.push(run_scenario(&ScenarioParams {
            name: &name,
            endpoint: &endpoint,
            batch,
            clients,
            schedule: &offered,
            corpus: &modules,
            options,
            deadline_ms,
            expected: expected.as_ref(),
        })?);
        (shards_doc, workers_doc) = (0, 0); // unknown: not our server
    } else {
        // In-process matrix: one sharded server on UDS + loopback TCP.
        let sock = std::env::temp_dir().join(format!("loadgen-{}.sock", std::process::id()));
        let mut config = ServerConfig::new(&sock);
        config.listen.push(ListenAddr::Tcp("127.0.0.1:0".into()));
        config.shards = shards;
        config.workers = workers;
        config.queue = queue;
        config.jobs = 1;
        // A cache striped to the shard count, like `abcdd --shards` sets up.
        config.cache = Some(Arc::new(
            abcd::AnalysisCache::in_memory(abcd::cache::DEFAULT_CACHE_BYTES).with_stripes(shards),
        ));
        let handle = abcd_server::start(config).map_err(|e| format!("bind: {e}"))?;
        let uds = Endpoint::uds(handle.socket().ok_or("no UDS endpoint")?);
        let tcp = Endpoint::Tcp(handle.tcp_addr().ok_or("no TCP endpoint")?.to_string());
        for (transport, endpoint) in [("uds", &uds), ("tcp", &tcp)] {
            for batch in [1usize, 8] {
                let name = format!("{transport}_batch{batch}");
                eprintln!("loadgen: {name} vs {} …", endpoint.describe());
                results.push(run_scenario(&ScenarioParams {
                    name: &name,
                    endpoint,
                    batch,
                    clients,
                    schedule: &offered,
                    corpus: &modules,
                    options,
                    deadline_ms,
                    expected: expected.as_ref(),
                })?);
            }
        }
        abcd_server::shutdown_at(&uds)?;
        handle.join();
        (shards_doc, workers_doc) = (shards, workers);
    }

    let params = BenchParams {
        seed,
        requests,
        clients,
        rate_per_sec: rate,
        zipf_s,
        corpus: corpus_len,
        shards: shards_doc,
        workers_per_shard: workers_doc,
        verified: expected.is_some(),
    };
    let doc = bench_json(&params, &results);
    std::fs::write(out, &doc).map_err(|e| format!("{out}: {e}"))?;

    let mut failed = false;
    for r in &results {
        eprintln!(
            "loadgen: {:>10}  sent {:>5}  ok {:>5}  fail_open {:>3}  errors {:>3}  {:>7.1} rps  p50 {:>6}us  p99 {:>7}us  p999 {:>7}us  steals {:>3}  queued {:>3}",
            r.name,
            r.requests_sent,
            r.ok,
            r.fail_open,
            r.errors,
            r.throughput_rps(),
            abcd_loadgen::percentile(&r.latency_us, 50.0),
            abcd_loadgen::percentile(&r.latency_us, 99.0),
            abcd_loadgen::percentile(&r.latency_us, 99.9),
            r.server_delta.0,
            r.server_delta.1,
        );
        for e in &r.error_samples {
            eprintln!("loadgen:   error: {e}");
        }
        failed |= r.errors > 0;
    }
    eprintln!("loadgen: wrote {out}");
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}
