//! `abcd-loadgen` — deterministic synthetic load for the `abcdd` service.
//!
//! The generator replays an **open-loop** schedule: arrival times come
//! from a seeded Poisson process and do not slow down when the server
//! does, so measured latency includes queueing — the number a service
//! owner actually cares about. Which module each request carries is drawn
//! from a **zipf** popularity distribution over a seeded synthetic corpus
//! whose per-module optimization cost is deliberately imbalanced (a
//! popular cheap head, a rare expensive tail), so a sharded server sees
//! realistic skew and must steal work to keep its tail latency flat.
//!
//! # Determinism
//!
//! Everything observable about the offered load is a pure function of the
//! seed: [`corpus`], [`zipf_cdf`], and [`schedule`] never read the clock,
//! the environment, or any global. Two runs with the same seed offer the
//! byte-identical request sequence at the same relative instants (the
//! *replies* still vary with scheduling noise — that is the measurement).
//!
//! # Differential verification
//!
//! With [`expected_outputs`] the runner checks every `ok` reply against
//! the one-shot pipeline (`mjc dump --stage opt` semantics): served IR
//! must be byte-identical, or — when the server failed open on a
//! deadline — byte-identical to the *unoptimized* compile. Batching,
//! stealing, and transport choice must all be invisible in the bytes.
//!
//! Results serialize as schema `abcd-bench-abcdd/1` (see [`bench_json`]),
//! gated in CI by `tools/bench_gate.py`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abcd::{Optimizer, OptimizerOptions};
use abcd_server::{CallOptions, Endpoint, RetryPolicy};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The schema identifier pinned by `BENCH_abcdd.json` and the gate.
pub const SCHEMA: &str = "abcd-bench-abcdd/1";

/// SplitMix64 — the repo's standard small seeded generator (also behind
/// the client's retry jitter and the chaos plan), here as a stream.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A stream seeded with `seed`; identical seeds replay identically.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 significant bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds `n` self-contained MJ modules with deliberately imbalanced
/// optimization cost: index 0 (the zipf head) is the cheapest, and cost
/// grows with the index — every 4th module gets an extra helper function
/// and a deeper loop nest, so the rare tail is several times more
/// expensive to compile + analyze than the popular head.
pub fn corpus(seed: u64, n: usize) -> Vec<String> {
    let mut rng = SplitMix64::new(seed ^ 0xC0_4955);
    (0..n.max(1))
        .map(|i| {
            // 1 cheap helper for the head, up to 6 for the heavy tail.
            let helpers = 1 + (i / 4).min(5);
            let salt = rng.next_u64() % 1_000_000;
            let mut src = String::new();
            for h in 0..helpers {
                let _ = write!(
                    src,
                    "fn work{h}(a: int[], b: int[]) -> int {{
    let s: int = {salt};
    for (let i: int = 0; i < a.length; i = i + 1) {{
        for (let j: int = 0; j < b.length; j = j + 1) {{
            if (i + j < a.length) {{ s = s + a[i + j] - b[j]; }}
            if (j <= i) {{ s = s + b[i - j]; }}
        }}
        let k: int = a.length - 1;
        while (k >= i) {{
            s = s + a[k] - a[i] + {h};
            k = k - 1;
        }}
    }}
    return s;
}}
"
                );
            }
            src.push_str("fn main() -> int { return 0; }\n");
            src
        })
        .collect()
}

/// The zipf(s) cumulative distribution over ranks `1..=n`: index 0 is the
/// most popular. Returned as a CDF so sampling is one uniform draw plus a
/// binary search.
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let n = n.max(1);
    let weights: Vec<f64> = (1..=n).map(|rank| (rank as f64).powf(-s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Maps a uniform draw `u ∈ [0, 1)` through the CDF to a corpus index.
pub fn sample_zipf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

/// One scheduled request: fire at `at_us` microseconds after scenario
/// start, carrying corpus module `corpus_idx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Offset from scenario start, in microseconds.
    pub at_us: u64,
    /// Which corpus module this request optimizes.
    pub corpus_idx: usize,
}

/// The full offered load: `requests` open-loop Poisson arrivals at
/// `rate_per_sec`, each drawing its module zipf(s)-weighted from
/// `corpus_len` ranks. Pure in `seed` — no clock, no environment.
pub fn schedule(
    seed: u64,
    requests: usize,
    rate_per_sec: f64,
    corpus_len: usize,
    zipf_s: f64,
) -> Vec<Arrival> {
    let mut arrivals_rng = SplitMix64::new(seed ^ 0xA441_7A15);
    let mut pick_rng = SplitMix64::new(seed ^ 0x21_BF00);
    let cdf = zipf_cdf(corpus_len, zipf_s);
    let rate = rate_per_sec.max(1e-6);
    let mut at = 0.0f64;
    (0..requests)
        .map(|_| {
            // Exponential inter-arrival: -ln(1-u)/rate seconds.
            let u = arrivals_rng.next_f64();
            at += -(1.0 - u).ln() / rate;
            Arrival {
                at_us: (at * 1e6) as u64,
                corpus_idx: sample_zipf(&cdf, pick_rng.next_f64()),
            }
        })
        .collect()
}

/// Locally computed ground truth for the differential check: for each
/// corpus module, the optimized IR (what an `ok` reply must serve) and
/// the unoptimized compile (what a fail-open reply must serve).
pub struct Expected {
    /// `to_string()` of the optimized module, per corpus index.
    pub optimized: Vec<String>,
    /// `to_string()` of the compiled, unoptimized module.
    pub unoptimized: Vec<String>,
}

/// Runs the one-shot pipeline over the corpus — exactly the bytes
/// `mjc dump --stage opt` (respectively `--stage ir` post-compile) would
/// print, which the service contract promises to match.
pub fn expected_outputs(corpus: &[String], options: OptimizerOptions) -> Result<Expected, String> {
    let mut optimized = Vec::with_capacity(corpus.len());
    let mut unoptimized = Vec::with_capacity(corpus.len());
    for (i, src) in corpus.iter().enumerate() {
        let mut module =
            abcd_frontend::compile(src).map_err(|e| format!("corpus module {i}: {e}"))?;
        unoptimized.push(module.to_string());
        Optimizer::with_options(options).optimize_module(&mut module, None);
        optimized.push(module.to_string());
    }
    Ok(Expected {
        optimized,
        unoptimized,
    })
}

/// How to run one scenario.
pub struct ScenarioParams<'a> {
    /// Scenario name as it appears in the bench document, e.g.
    /// `uds_batch1`.
    pub name: &'a str,
    /// Where to send the traffic.
    pub endpoint: &'a Endpoint,
    /// Requests per pipelined frame (1 = protocol v1 single requests).
    pub batch: usize,
    /// Concurrent client threads replaying the schedule.
    pub clients: usize,
    /// The offered load (see [`schedule`]).
    pub schedule: &'a [Arrival],
    /// The corpus the schedule indexes into.
    pub corpus: &'a [String],
    /// Optimizer options each request carries.
    pub options: OptimizerOptions,
    /// Per-request deadline forwarded to the server, if any.
    pub deadline_ms: Option<u64>,
    /// When set, every reply is byte-checked against the one-shot
    /// pipeline; mismatches count as errors.
    pub expected: Option<&'a Expected>,
}

/// What one scenario measured.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name (`uds_batch8`, …).
    pub name: String,
    /// `uds` or `tcp`.
    pub transport: String,
    /// Requests per frame.
    pub batch: usize,
    /// Requests offered (= schedule length).
    pub requests_sent: u64,
    /// Replies served optimized and (if verifying) byte-identical.
    pub ok: u64,
    /// Replies served unoptimized under the fail-open deadline contract.
    pub fail_open: u64,
    /// Terminal failures: transport errors, exhausted retries, and — when
    /// verifying — differential mismatches.
    pub errors: u64,
    /// First few error messages, for the report.
    pub error_samples: Vec<String>,
    /// Wall clock for the whole scenario, microseconds.
    pub duration_us: u64,
    /// Per-request latency samples (scheduled arrival → reply), sorted
    /// ascending, microseconds. Open-loop: includes queueing delay.
    pub latency_us: Vec<u64>,
    /// Server-side counter deltas over the scenario, from `stats`:
    /// (steals, queued_replies, shed, deadline_exceeded).
    pub server_delta: (u64, u64, u64, u64),
}

impl ScenarioResult {
    /// Completed requests per second of scenario wall clock.
    pub fn throughput_rps(&self) -> f64 {
        let done = (self.ok + self.fail_open) as f64;
        done / (self.duration_us.max(1) as f64 / 1e6)
    }
}

/// The `p`-th percentile (0–100) of an ascending-sorted sample set.
pub fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    // Nearest-rank: index = ceil(p/100 * n) - 1. The epsilon keeps float
    // noise (99.9/100*1000 = 999.0000…01) from bumping the rank.
    let rank = ((p / 100.0) * sorted_us.len() as f64 - 1e-9).ceil() as usize;
    sorted_us[rank.saturating_sub(1).min(sorted_us.len() - 1)]
}

/// Reads the (steals, queued_replies, shed, deadline_exceeded) counters
/// from a `stats` reply; absent fields (an older server) read as zero.
fn service_counters(endpoint: &Endpoint) -> (u64, u64, u64, u64) {
    use abcd_server::json::Json;
    match abcd_server::stats_at(endpoint) {
        Ok(doc) => {
            let n = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
            (
                n("steals"),
                n("queued_replies"),
                n("shed"),
                n("deadline_exceeded"),
            )
        }
        Err(_) => (0, 0, 0, 0),
    }
}

/// Replays `params.schedule` against the endpoint and measures it.
///
/// Open-loop: each request (or batch of `batch` consecutive requests)
/// fires at its scheduled offset from scenario start regardless of how
/// the server is doing; latency is measured from the *scheduled* arrival
/// to the reply, so server queueing shows up in the percentiles. Batches
/// fire when their last member has arrived. The schedule is split
/// round-robin across `clients` threads.
pub fn run_scenario(params: &ScenarioParams) -> Result<ScenarioResult, String> {
    struct Tally {
        ok: u64,
        fail_open: u64,
        errors: u64,
        error_samples: Vec<String>,
        latency_us: Vec<u64>,
    }
    let retry = RetryPolicy {
        max_attempts: 12,
        cap_ms: 200,
        seed: 0x10adu64,
        ..RetryPolicy::default()
    };
    let call = CallOptions {
        deadline_ms: params.deadline_ms,
        ..CallOptions::default()
    };
    let batch = params.batch.max(1);
    // Consecutive schedule entries share a frame; a batch is "ready" when
    // its newest member has arrived.
    let frames: Vec<&[Arrival]> = params.schedule.chunks(batch).collect();
    let tally = Mutex::new(Tally {
        ok: 0,
        fail_open: 0,
        errors: 0,
        error_samples: Vec::new(),
        latency_us: Vec::with_capacity(params.schedule.len()),
    });
    let before = service_counters(params.endpoint);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..params.clients.max(1) {
            let tally = &tally;
            let frames = &frames;
            let retry = &retry;
            scope.spawn(move || {
                for frame in frames
                    .iter()
                    .skip(client)
                    .step_by(params.clients.max(1))
                {
                    let fire_at = Duration::from_micros(frame.last().map_or(0, |a| a.at_us));
                    if let Some(wait) = fire_at.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let items: Vec<_> = frame
                        .iter()
                        .map(|a| {
                            (
                                (params.corpus[a.corpus_idx].as_str(), false),
                                &params.options,
                                None,
                                call,
                            )
                        })
                        .collect();
                    let outcome = if items.len() == 1 {
                        abcd_server::optimize_at(
                            params.endpoint,
                            items[0].0,
                            items[0].1,
                            items[0].2,
                            &items[0].3,
                            retry,
                        )
                        .map(|r| vec![Ok(r)])
                    } else {
                        abcd_server::optimize_batch_at(params.endpoint, &items, retry)
                    };
                    let lat = t0.elapsed().saturating_sub(fire_at).as_micros() as u64;
                    let mut t = tally.lock().unwrap_or_else(|p| p.into_inner());
                    match outcome {
                        Err(e) => {
                            // The whole frame failed (transport error or
                            // retries exhausted): every member errors.
                            t.errors += frame.len() as u64;
                            if t.error_samples.len() < 5 {
                                t.error_samples.push(e);
                            }
                        }
                        Ok(replies) => {
                            for (arrival, reply) in frame.iter().zip(replies) {
                                match reply {
                                    Err(e) => {
                                        t.errors += 1;
                                        if t.error_samples.len() < 5 {
                                            t.error_samples.push(e);
                                        }
                                    }
                                    Ok(opt) => {
                                        let mismatch =
                                            params.expected.and_then(|exp| {
                                                let want = if opt.deadline_exceeded {
                                                    &exp.unoptimized[arrival.corpus_idx]
                                                } else {
                                                    &exp.optimized[arrival.corpus_idx]
                                                };
                                                (opt.ir != *want).then(|| {
                                                    format!(
                                                        "module {}: served IR differs from one-shot ({})",
                                                        arrival.corpus_idx,
                                                        if opt.deadline_exceeded {
                                                            "fail-open"
                                                        } else {
                                                            "optimized"
                                                        }
                                                    )
                                                })
                                            });
                                        match mismatch {
                                            Some(e) => {
                                                t.errors += 1;
                                                if t.error_samples.len() < 5 {
                                                    t.error_samples.push(e);
                                                }
                                            }
                                            None if opt.deadline_exceeded => t.fail_open += 1,
                                            None => t.ok += 1,
                                        }
                                        t.latency_us.push(lat);
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    let duration_us = t0.elapsed().as_micros() as u64;
    let after = service_counters(params.endpoint);
    let mut tally = tally.into_inner().unwrap_or_else(|p| p.into_inner());
    tally.latency_us.sort_unstable();
    Ok(ScenarioResult {
        name: params.name.to_string(),
        transport: match params.endpoint {
            Endpoint::Uds(_) => "uds".to_string(),
            Endpoint::Tcp(_) => "tcp".to_string(),
        },
        batch,
        requests_sent: params.schedule.len() as u64,
        ok: tally.ok,
        fail_open: tally.fail_open,
        errors: tally.errors,
        error_samples: tally.error_samples,
        duration_us,
        latency_us: tally.latency_us,
        server_delta: (
            after.0.saturating_sub(before.0),
            after.1.saturating_sub(before.1),
            after.2.saturating_sub(before.2),
            after.3.saturating_sub(before.3),
        ),
    })
}

/// Global parameters recorded alongside the per-scenario results so the
/// gate can assert the regenerated run offered the identical load.
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Master seed for corpus + schedule.
    pub seed: u64,
    /// Requests per scenario.
    pub requests: usize,
    /// Client threads.
    pub clients: usize,
    /// Offered arrival rate, per second.
    pub rate_per_sec: f64,
    /// Zipf skew.
    pub zipf_s: f64,
    /// Corpus size.
    pub corpus: usize,
    /// Server shards (0 = external server, unknown).
    pub shards: usize,
    /// Workers per shard (0 = external server, unknown).
    pub workers_per_shard: usize,
    /// Whether every reply was byte-checked against the one-shot pipeline.
    pub verified: bool,
}

/// Serializes the run as a schema-pinned `abcd-bench-abcdd/1` document.
pub fn bench_json(params: &BenchParams, results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"params\": {{\"seed\": {}, \"requests\": {}, \"clients\": {}, \"rate_per_sec\": {}, \"zipf_s\": {}, \"corpus\": {}, \"shards\": {}, \"workers_per_shard\": {}, \"verified\": {}}},\n  \"scenarios\": [",
        params.seed,
        params.requests,
        params.clients,
        params.rate_per_sec,
        params.zipf_s,
        params.corpus,
        params.shards,
        params.workers_per_shard,
        params.verified,
    );
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"transport\": \"{}\", \"batch\": {}, \"requests_sent\": {}, \"ok\": {}, \"fail_open\": {}, \"errors\": {}, \"throughput_rps\": {:.1}, \"latency_us\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}, \"server\": {{\"steals\": {}, \"queued_replies\": {}, \"shed\": {}, \"deadline_exceeded\": {}}}}}{comma}",
            r.name,
            r.transport,
            r.batch,
            r.requests_sent,
            r.ok,
            r.fail_open,
            r.errors,
            r.throughput_rps(),
            percentile(&r.latency_us, 50.0),
            percentile(&r.latency_us, 99.0),
            percentile(&r.latency_us, 99.9),
            r.latency_us.last().copied().unwrap_or(0),
            r.server_delta.0,
            r.server_delta.1,
            r.server_delta.2,
            r.server_delta.3,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_monotone_and_head_heavy() {
        let cdf = zipf_cdf(24, 1.2);
        assert_eq!(cdf.len(), 24);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
        assert!(cdf[0] > 1.0 / 24.0 * 3.0, "rank 1 well above uniform");
        assert_eq!(sample_zipf(&cdf, 0.0), 0);
        assert_eq!(sample_zipf(&cdf, 0.999_999_9), 23);
    }

    #[test]
    fn corpus_cost_grows_with_index() {
        let c = corpus(7, 24);
        assert_eq!(c.len(), 24);
        assert!(
            c[23].len() > 2 * c[0].len(),
            "tail modules carry more functions than the head"
        );
        for (i, src) in c.iter().enumerate() {
            abcd_frontend::compile(src).unwrap_or_else(|e| panic!("module {i}: {e}"));
        }
    }

    #[test]
    fn percentiles_pick_sane_ranks() {
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&v, 50.0), 500);
        assert_eq!(percentile(&v, 99.0), 990);
        assert_eq!(percentile(&v, 99.9), 999);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
