//! Regression locks on the headline experiment numbers: if an algorithm
//! change silently degrades Figure 6 or the §8 effort bound, these fail
//! long before anyone re-reads `EXPERIMENTS.md`.

use abcd::OptimizerOptions;
use abcd_bench::{evaluate, evaluate_with_versioning};

#[test]
fn bidir_bubble_sort_stays_fully_optimized() {
    let b = abcd_benchsuite::by_name("biDirBubbleSort").unwrap();
    let r = evaluate(b, OptimizerOptions::default());
    assert_eq!(
        r.upper_removed_fraction(),
        1.0,
        "the paper's Figure 1 claim regressed"
    );
    assert_eq!(r.lower_removed_fraction(), 1.0);
    assert_eq!(r.optimized.dynamic_checks_total(), 0);
}

#[test]
fn steps_per_check_stays_in_the_papers_bound() {
    for name in ["db", "jess", "bubbleSort", "array"] {
        let b = abcd_benchsuite::by_name(name).unwrap();
        let r = evaluate(b, OptimizerOptions::default());
        assert!(
            r.report.steps_per_check() < 10.0,
            "{name}: {} steps/check (paper: fewer than 10)",
            r.report.steps_per_check()
        );
        // The separate PRE pass may add work for failed checks, but never
        // more than a small multiple of the primary traversal.
        assert!(
            r.report.pre_steps() <= 4 * r.report.steps().max(1),
            "{name}: PRE pass exploded: {} vs {}",
            r.report.pre_steps(),
            r.report.steps()
        );
    }
}

#[test]
fn hanoi_remains_the_hard_case_intraprocedurally() {
    let b = abcd_benchsuite::by_name("hanoi").unwrap();
    let r = evaluate(b, OptimizerOptions::default());
    let frac = r.upper_removed_fraction();
    assert!(
        frac > 0.15 && frac < 0.5,
        "hanoi moved out of its expected band: {frac}"
    );
    // …and versioning is what rescues it.
    let v = evaluate_with_versioning(b, OptimizerOptions::default());
    assert!(
        v.upper_removed_fraction() > frac + 0.15,
        "versioning no longer helps hanoi: {} vs {}",
        v.upper_removed_fraction(),
        frac
    );
}

#[test]
fn every_benchmark_shows_positive_speedup() {
    for b in abcd_benchsuite::BENCHMARKS {
        let r = evaluate(b, OptimizerOptions::default());
        assert!(
            r.speedup() > 1.0,
            "{}: speedup {} not positive",
            b.name,
            r.speedup()
        );
        assert!(
            r.upper_removed_fraction() >= 0.15,
            "{}: only {:.1}% upper checks removed",
            b.name,
            r.upper_removed_fraction() * 100.0
        );
    }
}

#[test]
fn bytemark_keeps_the_largest_partial_redundancy() {
    let mut best_name = "";
    let mut best = 0.0f64;
    for b in abcd_benchsuite::BENCHMARKS {
        let r = evaluate(b, OptimizerOptions::default());
        let frac = r.static_partial_fraction();
        if frac > best {
            best = frac;
            best_name = b.name;
        }
    }
    assert_eq!(
        best_name, "bytemark",
        "the paper's partial-redundancy outlier moved (now {best_name} at {best:.2})"
    );
}

/// Suite-wide solver-step total for one backend — deterministic, so the
/// gates below can pin it exactly enough to catch traversal regressions
/// before the wall-clock numbers in `BENCH_pipeline.json` drift.
fn suite_steps(backend: abcd::ProverBackend) -> u64 {
    use abcd::Optimizer;
    let opts = OptimizerOptions {
        prover: backend,
        ..OptimizerOptions::default()
    };
    let mut steps = 0u64;
    for b in abcd_benchsuite::BENCHMARKS {
        let mut m = b.compile().unwrap();
        let report = Optimizer::with_options(opts).optimize_module(&mut m, None);
        steps += report
            .functions
            .iter()
            .map(|f| f.metrics.backend_steps.iter().sum::<u64>())
            .sum::<u64>();
    }
    steps
}

#[test]
fn demand_backend_step_count_stays_flat() {
    // The demand prover is the oracle backend and the default engine; any
    // solver change that makes it traverse more is a regression this gate
    // catches. Calibrated at 2314 steps with ~12% headroom.
    let steps = suite_steps(abcd::ProverBackend::Demand);
    assert!(
        steps <= 2600,
        "demand backend suite steps regressed: {steps} (calibrated: 2314)"
    );
    assert!(steps > 0, "step accounting broke: no steps recorded");
}

#[test]
fn sweep_backend_step_counts_stay_flat() {
    // The sweep backends do orders of magnitude more (relaxation) steps by
    // design — batch visits edges per sparse pass, dbm relaxes the dense
    // matrix — but their totals are just as deterministic. Calibrated at
    // 93_809 (batch) and 7_743_036 (dbm) with ~12% headroom, matching the
    // `backends.*.suite_solver_steps` rows of BENCH_pipeline.json.
    let batch = suite_steps(abcd::ProverBackend::Batch);
    assert!(
        batch <= 105_000,
        "batch backend suite steps regressed: {batch} (calibrated: 93809)"
    );
    assert!(batch > 0, "batch step accounting broke");
    let dbm = suite_steps(abcd::ProverBackend::Dbm);
    assert!(
        dbm <= 8_670_000,
        "dbm backend suite steps regressed: {dbm} (calibrated: 7743036)"
    );
    assert!(dbm > batch, "dbm should dominate batch in raw steps");
}
