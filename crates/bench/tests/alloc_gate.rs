//! The steady-state allocation gate: once a prover's buffers are warm
//! (one reserve pass over every query), re-deriving every verdict of every
//! benchsuite kernel — on all three backends — must perform **zero** heap
//! allocations. This is the executable form of the zero-allocation
//! prove-path claim in `DESIGN.md` §5i.
//!
//! Protocol per function × backend:
//!
//! 1. build the upper/lower graphs and arena-backed provers (the
//!    per-function *reserve* — allocation here is expected and unmeasured);
//! 2. pass 1: answer every check query, warming memo tables / sweep
//!    distance buffers to their high-water capacity;
//! 3. `reset_warm()`: forget the verdicts but keep every buffer — the next
//!    pass re-traverses (demand) or re-sweeps (batch/dbm) for real, it
//!    does not just replay memo hits;
//! 4. pass 2 under the counting allocator: assert 0 allocations and
//!    byte-identical verdicts.

use abcd::{AnyProver, InequalityGraph, Problem, ProverBackend, ScratchArena, Vertex};
use abcd_ir::{CheckKind, InstKind, Value};

#[global_allocator]
static ALLOC: abcd_alloc::CountingAlloc = abcd_alloc::CountingAlloc;

/// Stages 1–3 of the driver pipeline, minus the optional cleanup: the
/// e-SSA form the constraint graphs are defined over.
fn to_essa(func: &mut abcd_ir::Function) {
    abcd_ssa::split_critical_edges(func);
    abcd_ssa::promote_locals(func).expect("frontend guarantees definite assignment");
    abcd_ssa::insert_pi_nodes(func);
}

#[test]
fn steady_state_prove_allocates_nothing_on_any_backend() {
    let backends = [
        ProverBackend::Demand,
        ProverBackend::Batch,
        ProverBackend::Dbm,
    ];
    let mut arena = ScratchArena::new();
    let mut gated_queries = 0u64;
    let mut gated_functions = 0u64;
    for bench in abcd_benchsuite::BENCHMARKS {
        let mut module = bench.compile().expect("benchmark compiles");
        for (_, func) in module.functions_mut() {
            to_essa(func);
            let mut checks: Vec<(Value, Value, CheckKind)> = Vec::new();
            for b in func.blocks() {
                for &id in func.block(b).insts() {
                    if let InstKind::BoundsCheck {
                        array, index, kind, ..
                    } = func.inst(id).kind
                    {
                        checks.push((array, index, kind));
                    }
                }
            }
            if checks.is_empty() {
                continue;
            }
            gated_functions += 1;
            // Distinct arrays, so every upper prover exists before the
            // measured pass (prover construction is part of the reserve).
            let mut arrays: Vec<Value> = checks
                .iter()
                .filter(|(_, _, k)| matches!(k, CheckKind::Upper | CheckKind::Both))
                .map(|&(a, _, _)| a)
                .collect();
            arrays.sort_unstable();
            arrays.dedup();
            let upper = InequalityGraph::build(func, Problem::Upper, None);
            let lower = InequalityGraph::build(func, Problem::Lower, None);
            for backend in backends {
                let mut upper_provers: Vec<AnyProver> = arrays
                    .iter()
                    .map(|&a| {
                        AnyProver::with_arena(&upper, Vertex::ArrayLen(a), backend, &mut arena)
                    })
                    .collect();
                let mut lower_prover =
                    AnyProver::with_arena(&lower, Vertex::Const(0), backend, &mut arena);
                let run = |ups: &mut [AnyProver], low: &mut AnyProver| -> u64 {
                    let mut proven = 0;
                    for &(array, index, kind) in &checks {
                        if matches!(kind, CheckKind::Upper | CheckKind::Both) {
                            let i = arrays.binary_search(&array).expect("prover exists");
                            if ups[i].demand_prove(Vertex::Value(index), -1) {
                                proven += 1;
                            }
                        }
                        if matches!(kind, CheckKind::Lower | CheckKind::Both)
                            && low.demand_prove(Vertex::Value(index), 0)
                        {
                            proven += 1;
                        }
                    }
                    proven
                };
                // Pass 1: the reserve — warms every table to its final size.
                let warm = run(&mut upper_provers, &mut lower_prover);
                // Forget verdicts, keep capacity: pass 2 does real work.
                for p in upper_provers.iter_mut() {
                    p.reset_warm();
                }
                lower_prover.reset_warm();
                // Pass 2: the measured steady state.
                let before = abcd_alloc::snapshot();
                let again = run(&mut upper_provers, &mut lower_prover);
                let d = abcd_alloc::delta(before);
                assert_eq!(
                    d.allocs,
                    0,
                    "{}/{}: {} backend allocated {} times ({} bytes) re-proving \
                     {} checks in steady state",
                    bench.name,
                    func.name(),
                    backend.name(),
                    d.allocs,
                    d.bytes,
                    checks.len(),
                );
                assert_eq!(warm, again, "verdicts changed across the reset");
                gated_queries += u64::try_from(checks.len()).unwrap();
                for p in upper_provers {
                    p.reclaim(&mut arena);
                }
                lower_prover.reclaim(&mut arena);
            }
        }
    }
    // The gate must have exercised real work on every kernel.
    assert!(
        gated_functions >= 15 && gated_queries > 100,
        "gate coverage collapsed: {gated_functions} functions, {gated_queries} queries"
    );
}
