//! Micro-benchmark: `demandProve` throughput (§5).
//!
//! Measures (a) single-check queries on the benchmark suite's inequality
//! graphs and (b) scaling on synthetic deep-chain graphs, backing the
//! paper's claim that a query touches a near-constant number of vertices
//! rather than the whole program.
//!
//! Run with: `cargo bench -p abcd-bench --bench solver`

use abcd::{DemandProver, InequalityGraph, Problem, Vertex};
use abcd_bench::micro::bench;
use abcd_ir::{CheckKind, Function, InstKind, Value};

fn essa_function(src: &str) -> Function {
    let mut m = abcd_frontend::compile(src).unwrap();
    abcd_ssa::module_to_essa(&mut m).unwrap();
    let id = m.functions().next().unwrap().0;
    m.function(id).clone()
}

/// A deep chain of `i := i ± c` copies between the guard and the check.
fn chain_source(depth: usize) -> String {
    let mut body = String::from(
        "fn f(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) {
                let j0: int = i;\n",
    );
    for d in 1..=depth {
        let op = if d % 2 == 0 { "+" } else { "-" };
        let prev = d - 1;
        body.push_str(&format!(
            "                let j{d}: int = j{prev} {op} 1;\n"
        ));
    }
    // The net offset is 0 or −1 depending on parity; index with the last.
    body.push_str(&format!(
        "                if (j{depth} >= 0) {{ if (j{depth} < a.length) {{ s = s + a[j{depth}]; }} }}
            }}
            return s;
        }}"
    ));
    body
}

fn first_upper_check(f: &Function) -> (Value, Value) {
    for b in f.blocks() {
        for &id in f.block(b).insts() {
            if let InstKind::BoundsCheck {
                array,
                index,
                kind: CheckKind::Upper,
                ..
            } = f.inst(id).kind
            {
                return (array, index);
            }
        }
    }
    panic!("no upper check");
}

fn all_upper_checks(f: &Function) -> Vec<(Value, Value)> {
    let mut checks = Vec::new();
    for b in f.blocks() {
        for &id in f.block(b).insts() {
            if let InstKind::BoundsCheck {
                array,
                index,
                kind: CheckKind::Upper,
                ..
            } = f.inst(id).kind
            {
                checks.push((array, index));
            }
        }
    }
    checks
}

fn bench_suite_queries() {
    for bench_prog in abcd_benchsuite::BENCHMARKS.iter().take(5) {
        let mut m = bench_prog.compile().unwrap();
        abcd_ssa::module_to_essa(&mut m).unwrap();
        // Analyze every upper check of every function, fresh prover each
        // iteration (worst case: no cross-check memoization).
        let funcs: Vec<Function> = m.functions().map(|(_, f)| f.clone()).collect();
        let prepared: Vec<(InequalityGraph, Vec<(Value, Value)>)> = funcs
            .iter()
            .map(|f| {
                (
                    InequalityGraph::build(f, Problem::Upper, None),
                    all_upper_checks(f),
                )
            })
            .collect();
        bench(&format!("demand_prove/suite/{}", bench_prog.name), || {
            let mut proved = 0usize;
            for (g, checks) in &prepared {
                for (array, index) in checks {
                    let mut p = DemandProver::new(g, Vertex::ArrayLen(*array));
                    if p.demand_prove(Vertex::Value(*index), -1) {
                        proved += 1;
                    }
                }
            }
            proved
        });
    }
}

fn bench_chain_scaling() {
    for depth in [4usize, 16, 64, 256] {
        let f = essa_function(&chain_source(depth));
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, index) = first_upper_check(&f);
        bench(&format!("demand_prove/chain_depth/{depth}"), || {
            let mut p = DemandProver::new(&g, Vertex::ArrayLen(array));
            p.demand_prove(Vertex::Value(index), -1)
        });
    }
}

fn bench_graph_construction() {
    let bench_prog = abcd_benchsuite::by_name("db").unwrap();
    let mut m = bench_prog.compile().unwrap();
    abcd_ssa::module_to_essa(&mut m).unwrap();
    let funcs: Vec<Function> = m.functions().map(|(_, f)| f.clone()).collect();
    bench("inequality_graph/build_db", || {
        funcs
            .iter()
            .map(|f| InequalityGraph::build(f, Problem::Upper, None).edge_count())
            .sum::<usize>()
    });
}

/// Demand-driven vs. exhaustive cost on the same graphs — the §5 trade-off
/// the paper's design hinges on.
fn bench_demand_vs_exhaustive() {
    use abcd::ExhaustiveDistances;
    for name in ["db", "jess", "biDirBubbleSort"] {
        let bench_prog = abcd_benchsuite::by_name(name).unwrap();
        let mut m = bench_prog.compile().unwrap();
        abcd_ssa::module_to_essa(&mut m).unwrap();
        // Largest function by check count.
        let func = m
            .functions()
            .map(|(_, f)| f.clone())
            .max_by_key(|f| f.count_checks().0)
            .unwrap();
        let g = InequalityGraph::build(&func, Problem::Upper, None);
        let (array, index) = first_upper_check(&func);

        bench(
            &format!("demand_vs_exhaustive/demand_one_check/{name}"),
            || {
                let mut p = DemandProver::new(&g, Vertex::ArrayLen(array));
                p.demand_prove(Vertex::Value(index), -1)
            },
        );
        bench(
            &format!("demand_vs_exhaustive/exhaustive_one_source/{name}"),
            || ExhaustiveDistances::compute(&g, Vertex::ArrayLen(array)).steps,
        );
    }
}

fn main() {
    bench_suite_queries();
    bench_chain_scaling();
    bench_graph_construction();
    bench_demand_vs_exhaustive();
}
