//! Micro-benchmark: full-pipeline compile-time cost — what a JIT pays:
//! SSA construction, e-SSA π insertion, and the complete ABCD pass, per
//! benchmark program. The paper's pitch is that this must be cheap enough
//! for dynamic compilation.
//!
//! Run with: `cargo bench -p abcd-bench --bench pipeline`
//!
//! With `BENCH_PIPELINE_JSON=path` set, the run additionally persists its
//! numbers — including the per-`--prover`-backend sweep and the per-phase
//! allocation counts from the counting global allocator — as a JSON
//! document (the committed `BENCH_pipeline.json` perf trajectory,
//! schema `abcd-bench-pipeline/2`). The `phases.steady_prove.allocs`
//! entry is the headline: a warm prover re-deriving every verdict in the
//! suite performs **zero** heap allocations (`tests/alloc_gate.rs` is the
//! assertion-backed twin of this number).

use abcd::{
    AnyProver, InequalityGraph, Optimizer, OptimizerOptions, Problem, ProverBackend, ScratchArena,
    ScratchPool, Vertex,
};
use abcd_bench::micro::bench;
use abcd_ir::{CheckKind, InstKind, Value};
use std::sync::{Arc, OnceLock};

#[global_allocator]
static ALLOC: abcd_alloc::CountingAlloc = abcd_alloc::CountingAlloc;

/// The process-wide warm scratch pool every driver measurement shares —
/// the same steady-state `abcdd` reaches after its first request, which is
/// the regime the trajectory tracks.
fn shared_pool() -> Arc<ScratchPool> {
    static POOL: OnceLock<Arc<ScratchPool>> = OnceLock::new();
    Arc::clone(POOL.get_or_init(|| Arc::new(ScratchPool::new())))
}

/// Wall time plus the allocation count of one additional iteration.
///
/// `bench` runs its calibration loop first, so by the time the counted
/// iteration executes, every lazy global (interner, benchsuite sources) is
/// warm and the count is reproducible run to run.
fn counted<R>(name: &str, mut f: impl FnMut() -> R) -> (f64, u64) {
    let ns = bench(name, &mut f);
    let before = abcd_alloc::snapshot();
    std::hint::black_box(f());
    (ns, abcd_alloc::delta(before).allocs)
}

fn bench_essa(results: &mut Vec<(String, f64, u64)>) {
    for b in abcd_benchsuite::BENCHMARKS.iter().take(6) {
        let module = b.compile().unwrap();
        let name = format!("pipeline/to_essa/{}", b.name);
        let (ns, allocs) = counted(&name, || {
            let mut m = module.clone();
            abcd_ssa::module_to_essa(&mut m).unwrap();
            m.function_count()
        });
        results.push((name, ns, allocs));
    }
}

fn bench_full_abcd(results: &mut Vec<(String, f64, u64)>) {
    for b in abcd_benchsuite::BENCHMARKS {
        let module = b.compile().unwrap();
        let name = format!("pipeline/abcd_full/{}", b.name);
        let (ns, allocs) = counted(&name, || {
            let mut m = module.clone();
            let report = Optimizer::new()
                .with_scratch_pool(shared_pool())
                .optimize_module(&mut m, None);
            report.checks_removed_fully()
        });
        results.push((name, ns, allocs));
    }
}

fn bench_abcd_without_pre(results: &mut Vec<(String, f64, u64)>) {
    let b = abcd_benchsuite::by_name("biDirBubbleSort").unwrap();
    let module = b.compile().unwrap();
    let opts = OptimizerOptions {
        pre: false,
        classify_local: false,
        ..OptimizerOptions::default()
    };
    let (ns, allocs) = counted("pipeline/abcd_minimal_bidir", || {
        let mut m = module.clone();
        Optimizer::with_options(opts)
            .with_scratch_pool(shared_pool())
            .optimize_module(&mut m, None)
            .checks_removed_fully()
    });
    results.push(("pipeline/abcd_minimal_bidir".to_string(), ns, allocs));
}

/// Sequential vs. parallel driver on the whole suite. On a host with fewer
/// CPUs than the thread count these rows *document a regression* — extra
/// workers only add contention — which is why `mjc`/`abcdd` now clamp their
/// worker counts through [`abcd::clamp_jobs`]. The rows stay oversubscribed
/// on purpose so the cost remains visible in the trajectory.
fn bench_parallel_driver(results: &mut Vec<(String, f64, u64)>) {
    for threads in [1usize, 2, 4] {
        let name = format!("pipeline/abcd_suite_threads/{threads}");
        let (ns, allocs) = counted(&name, || {
            let mut removed = 0usize;
            for b in abcd_benchsuite::BENCHMARKS {
                let mut m = b.compile().unwrap();
                let opt = Optimizer::new()
                    .with_threads(threads)
                    .with_scratch_pool(shared_pool());
                removed += opt.optimize_module(&mut m, None).checks_removed_fully();
            }
            removed
        });
        results.push((name, ns, allocs));
    }
}

/// One `--prover` backend over the whole suite: wall time (ns/iter) plus
/// the deterministic solver-step total, which is what the regression gate
/// in `tests/regressions.rs` pins.
fn bench_backends(results: &mut Vec<(String, f64, u64)>) -> Vec<(&'static str, f64, u64)> {
    let mut rows = Vec::new();
    for backend in [
        ProverBackend::Demand,
        ProverBackend::Batch,
        ProverBackend::Dbm,
        ProverBackend::Auto,
    ] {
        let opts = OptimizerOptions {
            prover: backend,
            ..OptimizerOptions::default()
        };
        let name = format!("pipeline/abcd_suite_prover/{}", backend.name());
        let (ns, allocs) = counted(&name, || {
            let mut removed = 0usize;
            for b in abcd_benchsuite::BENCHMARKS {
                let mut m = b.compile().unwrap();
                removed += Optimizer::with_options(opts)
                    .with_scratch_pool(shared_pool())
                    .optimize_module(&mut m, None)
                    .checks_removed_fully();
            }
            removed
        });
        results.push((name, ns, allocs));
        let mut steps = 0u64;
        for b in abcd_benchsuite::BENCHMARKS {
            let mut m = b.compile().unwrap();
            let report = Optimizer::with_options(opts)
                .with_scratch_pool(shared_pool())
                .optimize_module(&mut m, None);
            steps += report
                .functions
                .iter()
                .map(|f| f.metrics.backend_steps.iter().sum::<u64>())
                .sum::<u64>();
        }
        rows.push((backend.name(), ns, steps));
    }
    rows
}

/// A function's constraint graphs plus its check queries, prepared once so
/// the steady-state phase below measures *only* re-proving.
struct PreparedFn {
    upper: InequalityGraph,
    lower: InequalityGraph,
    arrays: Vec<Value>,
    checks: Vec<(Value, Value, CheckKind)>,
}

fn prepare_suite() -> Vec<PreparedFn> {
    let mut prepared = Vec::new();
    for b in abcd_benchsuite::BENCHMARKS {
        let mut module = b.compile().unwrap();
        for (_, func) in module.functions_mut() {
            abcd_ssa::split_critical_edges(func);
            abcd_ssa::promote_locals(func).unwrap();
            abcd_ssa::insert_pi_nodes(func);
            let mut checks = Vec::new();
            for blk in func.blocks() {
                for &id in func.block(blk).insts() {
                    if let InstKind::BoundsCheck {
                        array, index, kind, ..
                    } = func.inst(id).kind
                    {
                        checks.push((array, index, kind));
                    }
                }
            }
            if checks.is_empty() {
                continue;
            }
            let mut arrays: Vec<Value> = checks
                .iter()
                .filter(|(_, _, k)| matches!(k, CheckKind::Upper | CheckKind::Both))
                .map(|&(a, _, _)| a)
                .collect();
            arrays.sort_unstable();
            arrays.dedup();
            prepared.push(PreparedFn {
                upper: InequalityGraph::build(func, Problem::Upper, None),
                lower: InequalityGraph::build(func, Problem::Lower, None),
                arrays,
                checks,
            });
        }
    }
    prepared
}

/// The four pipeline phases with wall time and allocation counts:
/// `compile`, `essa`, `optimize` (all allocate — they build fresh IR each
/// iteration), and `steady_prove`, where warm arena-backed provers
/// re-derive every verdict of every benchsuite kernel with **zero** heap
/// allocations.
fn bench_phases() -> Vec<(&'static str, f64, u64)> {
    let mut phases = Vec::new();

    let (ns, allocs) = counted("pipeline/phase/compile", || {
        let mut functions = 0usize;
        for b in abcd_benchsuite::BENCHMARKS {
            functions += b.compile().unwrap().function_count();
        }
        functions
    });
    phases.push(("compile", ns, allocs));

    let modules: Vec<_> = abcd_benchsuite::BENCHMARKS
        .iter()
        .map(|b| b.compile().unwrap())
        .collect();
    let (ns, allocs) = counted("pipeline/phase/essa", || {
        let mut functions = 0usize;
        for module in &modules {
            let mut m = module.clone();
            abcd_ssa::module_to_essa(&mut m).unwrap();
            functions += m.function_count();
        }
        functions
    });
    phases.push(("essa", ns, allocs));

    let (ns, allocs) = counted("pipeline/phase/optimize", || {
        let mut removed = 0usize;
        for module in &modules {
            let mut m = module.clone();
            removed += Optimizer::new()
                .with_scratch_pool(shared_pool())
                .optimize_module(&mut m, None)
                .checks_removed_fully();
        }
        removed
    });
    phases.push(("optimize", ns, allocs));

    let prepared = prepare_suite();
    let mut arena = ScratchArena::new();
    let mut provers: Vec<(Vec<AnyProver>, AnyProver)> = prepared
        .iter()
        .map(|p| {
            let uppers = p
                .arrays
                .iter()
                .map(|&a| {
                    AnyProver::with_arena(
                        &p.upper,
                        Vertex::ArrayLen(a),
                        ProverBackend::Demand,
                        &mut arena,
                    )
                })
                .collect();
            let lower = AnyProver::with_arena(
                &p.lower,
                Vertex::Const(0),
                ProverBackend::Demand,
                &mut arena,
            );
            (uppers, lower)
        })
        .collect();
    let (ns, allocs) = counted("pipeline/phase/steady_prove", || {
        let mut proven = 0usize;
        for (p, (uppers, lower)) in prepared.iter().zip(provers.iter_mut()) {
            // Forget verdicts, keep capacity: each iteration re-traverses.
            for u in uppers.iter_mut() {
                u.reset_warm();
            }
            lower.reset_warm();
            for &(array, index, kind) in &p.checks {
                if matches!(kind, CheckKind::Upper | CheckKind::Both) {
                    let i = p.arrays.binary_search(&array).unwrap();
                    if uppers[i].demand_prove(Vertex::Value(index), -1) {
                        proven += 1;
                    }
                }
                if matches!(kind, CheckKind::Lower | CheckKind::Both)
                    && lower.demand_prove(Vertex::Value(index), 0)
                {
                    proven += 1;
                }
            }
        }
        proven
    });
    phases.push(("steady_prove", ns, allocs));
    for (uppers, lower) in provers {
        for u in uppers {
            u.reclaim(&mut arena);
        }
        lower.reclaim(&mut arena);
    }

    phases
}

/// Renders the committed perf-trajectory document (schema 2). Wall times
/// vary by host, so the schema separates them from the deterministic
/// quantities the CI gate pins exactly: solver-step totals and the
/// zero-allocation steady-prove count.
fn render_json(
    results: &[(String, f64, u64)],
    backends: &[(&'static str, f64, u64)],
    phases: &[(&'static str, f64, u64)],
) -> String {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = format!(
        "{{\"schema\":\"abcd-bench-pipeline/2\",\"host_cpus\":{host_cpus},\
         \"notes\":{{\"parallel\":\"abcd_suite_threads rows beyond host_cpus \
         document the oversubscription regression (extra workers only add \
         contention); mjc/abcdd clamp worker counts to the available \
         parallelism via abcd::clamp_jobs\"}},\"phases\":{{"
    );
    for (i, (name, ns, allocs)) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"ns\":{ns:.0},\"allocs\":{allocs}}}"
        ));
    }
    out.push_str("},\"backends\":{");
    for (i, (name, ns, steps)) in backends.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"suite_ns_per_iter\":{ns:.0},\"suite_solver_steps\":{steps}}}"
        ));
    }
    out.push_str("},\"benchmarks\":{");
    for (i, (name, ns, allocs)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"ns\":{ns:.0},\"allocs\":{allocs}}}",
            abcd::json_escape(name)
        ));
    }
    out.push_str("}}\n");
    out
}

fn main() {
    let mut results = Vec::new();
    bench_essa(&mut results);
    bench_full_abcd(&mut results);
    bench_abcd_without_pre(&mut results);
    bench_parallel_driver(&mut results);
    let backends = bench_backends(&mut results);
    let phases = bench_phases();
    if let Ok(path) = std::env::var("BENCH_PIPELINE_JSON") {
        std::fs::write(&path, render_json(&results, &backends, &phases)).expect("write bench json");
        println!("wrote {path}");
    }
}
