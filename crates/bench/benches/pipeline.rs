//! Micro-benchmark: full-pipeline compile-time cost — what a JIT pays:
//! SSA construction, e-SSA π insertion, and the complete ABCD pass, per
//! benchmark program. The paper's pitch is that this must be cheap enough
//! for dynamic compilation.
//!
//! Run with: `cargo bench -p abcd-bench --bench pipeline`
//!
//! With `BENCH_PIPELINE_JSON=path` set, the run additionally persists its
//! numbers — including the per-`--prover`-backend sweep — as a JSON
//! document (the committed `BENCH_pipeline.json` perf trajectory).

use abcd::{Optimizer, OptimizerOptions, ProverBackend};
use abcd_bench::micro::bench;

fn bench_essa(results: &mut Vec<(String, f64)>) {
    for b in abcd_benchsuite::BENCHMARKS.iter().take(6) {
        let module = b.compile().unwrap();
        let name = format!("pipeline/to_essa/{}", b.name);
        let ns = bench(&name, || {
            let mut m = module.clone();
            abcd_ssa::module_to_essa(&mut m).unwrap();
            m.function_count()
        });
        results.push((name, ns));
    }
}

fn bench_full_abcd(results: &mut Vec<(String, f64)>) {
    for b in abcd_benchsuite::BENCHMARKS {
        let module = b.compile().unwrap();
        let name = format!("pipeline/abcd_full/{}", b.name);
        let ns = bench(&name, || {
            let mut m = module.clone();
            let report = Optimizer::new().optimize_module(&mut m, None);
            report.checks_removed_fully()
        });
        results.push((name, ns));
    }
}

fn bench_abcd_without_pre(results: &mut Vec<(String, f64)>) {
    let b = abcd_benchsuite::by_name("biDirBubbleSort").unwrap();
    let module = b.compile().unwrap();
    let opts = OptimizerOptions {
        pre: false,
        classify_local: false,
        ..OptimizerOptions::default()
    };
    let ns = bench("pipeline/abcd_minimal_bidir", || {
        let mut m = module.clone();
        Optimizer::with_options(opts)
            .optimize_module(&mut m, None)
            .checks_removed_fully()
    });
    results.push(("pipeline/abcd_minimal_bidir".to_string(), ns));
}

/// Sequential vs. parallel driver on the whole suite — the speedup the
/// scoped-thread work pool buys at module granularity.
fn bench_parallel_driver(results: &mut Vec<(String, f64)>) {
    for threads in [1usize, 2, 4] {
        let name = format!("pipeline/abcd_suite_threads/{threads}");
        let ns = bench(&name, || {
            let mut removed = 0usize;
            for b in abcd_benchsuite::BENCHMARKS {
                let mut m = b.compile().unwrap();
                let opt = Optimizer::new().with_threads(threads);
                removed += opt.optimize_module(&mut m, None).checks_removed_fully();
            }
            removed
        });
        results.push((name, ns));
    }
}

/// One `--prover` backend over the whole suite: wall time (ns/iter) plus
/// the deterministic solver-step total, which is what the regression gate
/// in `tests/regressions.rs` pins.
fn bench_backends(results: &mut Vec<(String, f64)>) -> Vec<(&'static str, f64, u64)> {
    let mut rows = Vec::new();
    for backend in [
        ProverBackend::Demand,
        ProverBackend::Batch,
        ProverBackend::Dbm,
        ProverBackend::Auto,
    ] {
        let opts = OptimizerOptions {
            prover: backend,
            ..OptimizerOptions::default()
        };
        let name = format!("pipeline/abcd_suite_prover/{}", backend.name());
        let ns = bench(&name, || {
            let mut removed = 0usize;
            for b in abcd_benchsuite::BENCHMARKS {
                let mut m = b.compile().unwrap();
                removed += Optimizer::with_options(opts)
                    .optimize_module(&mut m, None)
                    .checks_removed_fully();
            }
            removed
        });
        results.push((name, ns));
        let mut steps = 0u64;
        for b in abcd_benchsuite::BENCHMARKS {
            let mut m = b.compile().unwrap();
            let report = Optimizer::with_options(opts).optimize_module(&mut m, None);
            steps += report
                .functions
                .iter()
                .map(|f| f.metrics.backend_steps.iter().sum::<u64>())
                .sum::<u64>();
        }
        rows.push((backend.name(), ns, steps));
    }
    rows
}

/// Renders the committed perf-trajectory document. Wall times vary by
/// host, so the schema separates them from the deterministic step counts.
fn render_json(results: &[(String, f64)], backends: &[(&'static str, f64, u64)]) -> String {
    let mut out = String::from("{\"schema\":\"abcd-bench-pipeline/1\",\"backends\":{");
    for (i, (name, ns, steps)) in backends.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"suite_ns_per_iter\":{:.0},\"suite_solver_steps\":{steps}}}",
            ns
        ));
    }
    out.push_str("},\"benchmarks\":{");
    for (i, (name, ns)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{:.0}", abcd::json_escape(name), ns));
    }
    out.push_str("}}\n");
    out
}

fn main() {
    let mut results = Vec::new();
    bench_essa(&mut results);
    bench_full_abcd(&mut results);
    bench_abcd_without_pre(&mut results);
    bench_parallel_driver(&mut results);
    let backends = bench_backends(&mut results);
    if let Ok(path) = std::env::var("BENCH_PIPELINE_JSON") {
        std::fs::write(&path, render_json(&results, &backends)).expect("write bench json");
        println!("wrote {path}");
    }
}
