//! Micro-benchmark: full-pipeline compile-time cost — what a JIT pays:
//! SSA construction, e-SSA π insertion, and the complete ABCD pass, per
//! benchmark program. The paper's pitch is that this must be cheap enough
//! for dynamic compilation.
//!
//! Run with: `cargo bench -p abcd-bench --bench pipeline`

use abcd::{Optimizer, OptimizerOptions};
use abcd_bench::micro::bench;

fn bench_essa() {
    for b in abcd_benchsuite::BENCHMARKS.iter().take(6) {
        let module = b.compile().unwrap();
        bench(&format!("pipeline/to_essa/{}", b.name), || {
            let mut m = module.clone();
            abcd_ssa::module_to_essa(&mut m).unwrap();
            m.function_count()
        });
    }
}

fn bench_full_abcd() {
    for b in abcd_benchsuite::BENCHMARKS {
        let module = b.compile().unwrap();
        bench(&format!("pipeline/abcd_full/{}", b.name), || {
            let mut m = module.clone();
            let report = Optimizer::new().optimize_module(&mut m, None);
            report.checks_removed_fully()
        });
    }
}

fn bench_abcd_without_pre() {
    let b = abcd_benchsuite::by_name("biDirBubbleSort").unwrap();
    let module = b.compile().unwrap();
    let opts = OptimizerOptions {
        pre: false,
        classify_local: false,
        ..OptimizerOptions::default()
    };
    bench("pipeline/abcd_minimal_bidir", || {
        let mut m = module.clone();
        Optimizer::with_options(opts)
            .optimize_module(&mut m, None)
            .checks_removed_fully()
    });
}

/// Sequential vs. parallel driver on the whole suite — the speedup the
/// scoped-thread work pool buys at module granularity.
fn bench_parallel_driver() {
    for threads in [1usize, 2, 4] {
        bench(&format!("pipeline/abcd_suite_threads/{threads}"), || {
            let mut removed = 0usize;
            for b in abcd_benchsuite::BENCHMARKS {
                let mut m = b.compile().unwrap();
                let opt = Optimizer::new().with_threads(threads);
                removed += opt.optimize_module(&mut m, None).checks_removed_fully();
            }
            removed
        });
    }
}

fn main() {
    bench_essa();
    bench_full_abcd();
    bench_abcd_without_pre();
    bench_parallel_driver();
}
