//! Criterion benchmark: full-pipeline compile-time cost — what a JIT pays:
//! SSA construction, e-SSA π insertion, and the complete ABCD pass, per
//! benchmark program. The paper's pitch is that this must be cheap enough
//! for dynamic compilation.

use abcd::{Optimizer, OptimizerOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_essa(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/to_essa");
    for bench in abcd_benchsuite::BENCHMARKS.iter().take(6) {
        let module = bench.compile().unwrap();
        group.bench_function(BenchmarkId::from_parameter(bench.name), |b| {
            b.iter(|| {
                let mut m = module.clone();
                abcd_ssa::module_to_essa(&mut m).unwrap();
                m.function_count()
            })
        });
    }
    group.finish();
}

fn bench_full_abcd(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/abcd_full");
    for bench in abcd_benchsuite::BENCHMARKS {
        let module = bench.compile().unwrap();
        group.bench_function(BenchmarkId::from_parameter(bench.name), |b| {
            b.iter(|| {
                let mut m = module.clone();
                let report = Optimizer::new().optimize_module(&mut m, None);
                report.checks_removed_fully()
            })
        });
    }
    group.finish();
}

fn bench_abcd_without_pre(c: &mut Criterion) {
    let bench = abcd_benchsuite::by_name("biDirBubbleSort").unwrap();
    let module = bench.compile().unwrap();
    let opts = OptimizerOptions {
        pre: false,
        classify_local: false,
        ..OptimizerOptions::default()
    };
    c.bench_function("pipeline/abcd_minimal_bidir", |b| {
        b.iter(|| {
            let mut m = module.clone();
            Optimizer::with_options(opts)
                .optimize_module(&mut m, None)
                .checks_removed_fully()
        })
    });
}

criterion_group!(benches, bench_essa, bench_full_abcd, bench_abcd_without_pre);
criterion_main!(benches);
