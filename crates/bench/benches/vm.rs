//! Criterion benchmark: interpreter throughput with and without bounds
//! checks — the execution-substrate side of the speedup experiment (E4):
//! wall-clock interpreter time should improve when checks are removed,
//! qualitatively matching the model-cycle speedup.

use abcd::Optimizer;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_checked_vs_optimized(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm/run_main");
    for name in ["bubbleSort", "array", "sieve"] {
        let bench = abcd_benchsuite::by_name(name).unwrap();
        let baseline = bench.compile().unwrap();
        let mut optimized = bench.compile().unwrap();
        Optimizer::new().optimize_module(&mut optimized, None);

        group.bench_function(BenchmarkId::new("checked", name), |b| {
            b.iter(|| {
                let mut vm = abcd_vm::Vm::new(&baseline);
                vm.call_by_name("main", &[]).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("optimized", name), |b| {
            b.iter(|| {
                let mut vm = abcd_vm::Vm::new(&optimized);
                vm.call_by_name("main", &[]).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checked_vs_optimized);
criterion_main!(benches);
