//! Micro-benchmark: interpreter throughput with and without bounds
//! checks — the execution-substrate side of the speedup experiment (E4):
//! wall-clock interpreter time should improve when checks are removed,
//! qualitatively matching the model-cycle speedup.
//!
//! Run with: `cargo bench -p abcd-bench --bench vm`

use abcd::Optimizer;
use abcd_bench::micro::bench;

fn main() {
    for name in ["bubbleSort", "array", "sieve"] {
        let b = abcd_benchsuite::by_name(name).unwrap();
        let baseline = b.compile().unwrap();
        let mut optimized = b.compile().unwrap();
        Optimizer::new().optimize_module(&mut optimized, None);

        bench(&format!("vm/run_main/checked/{name}"), || {
            let mut vm = abcd_vm::Vm::new(&baseline);
            vm.call_by_name("main", &[]).unwrap()
        });
        bench(&format!("vm/run_main/optimized/{name}"), || {
            let mut vm = abcd_vm::Vm::new(&optimized);
            vm.call_by_name("main", &[]).unwrap()
        });
    }
}
