//! A tiny dependency-free micro-benchmark harness.
//!
//! The repository must build and test with no network access, so the
//! `cargo bench` targets cannot depend on criterion. This module provides
//! the small subset we need: warm-up, automatic iteration scaling to a
//! target measurement window, and a median-of-samples report in ns/iter.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples collected per benchmark; the median is reported.
const SAMPLES: usize = 5;
/// Target wall-clock time for one sample.
const TARGET: Duration = Duration::from_millis(40);

/// Runs `f` repeatedly and prints a `name ... ns/iter` line.
///
/// The return value of `f` is passed through [`black_box`] so the work
/// cannot be optimized away. Returns the median nanoseconds per iteration
/// so callers can post-process (e.g. the metrics JSON emitters).
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
    // Warm-up and calibration: find an iteration count that fills TARGET.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET || iters >= 1 << 24 {
            break;
        }
        let grow = (TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil();
        iters = (iters.saturating_mul(grow as u64)).clamp(iters + 1, 1 << 24);
    }

    let mut samples = [0f64; SAMPLES];
    for s in samples.iter_mut() {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        *s = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[SAMPLES / 2];
    println!("{name:<48} {median:>14.1} ns/iter  ({iters} iters/sample)");
    median
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        let ns = bench("selftest/noop_sum", || (0..64u64).sum::<u64>());
        assert!(ns > 0.0);
    }
}
