//! Experiment E1 — reproduces **Figure 6** of the paper: the fraction of
//! dynamic upper-bound checks removed per benchmark, with the local/global
//! split for the five SPEC-like programs, plus the suite average (the
//! paper's headline "45% of dynamic bound check instructions").
//!
//! Run with: `cargo run --release -p abcd-bench --bin figure6`
//!
//! Pass `--metrics` (and/or `--metrics-out FILE`, `--jobs N`) to also emit
//! the `abcd-bench-metrics/2` JSON: per-pass timings, solver step and memo
//! counters per benchmark, fail-open incident counters, and the measured
//! sequential-vs-parallel wall-clock comparison of the optimize phase.

use abcd::OptimizerOptions;
use abcd_bench::{bar, evaluate_all, print_incident_summary};
use abcd_benchsuite::Group;

fn main() {
    // Translation validation on: every elimination in the figure is
    // independently re-proven, and the incident summary below records the
    // (expected-zero) reinstatement count in the run's trajectory.
    let options = OptimizerOptions {
        validate: true,
        ..OptimizerOptions::default()
    };
    let results = evaluate_all(options);

    println!("Figure 6: dynamic upper-bound checks removed (this reproduction)");
    println!("{:-<78}", "");
    println!(
        "{:<18} {:>10} {:>10} {:>8}  {:<24}",
        "benchmark", "baseline", "removed", "%", "(local # / global #)"
    );
    println!("{:-<78}", "");

    let mut fractions = Vec::new();
    for r in &results {
        let before = r.baseline.dynamic_upper_checks();
        let after = r.optimized.dynamic_upper_checks();
        let removed = before.saturating_sub(after);
        let frac = r.upper_removed_fraction();
        fractions.push(frac);
        let split = if r.group == Group::Spec {
            // The paper splits the SPEC bars into local and global parts.
            let l = r.dynamic_upper_removed_local;
            let g = r.dynamic_upper_removed_global;
            format!("local {l} / global {g}")
        } else {
            String::new()
        };
        println!(
            "{:<18} {:>10} {:>10} {:>7.1}%  {} {}",
            r.name,
            before,
            removed,
            frac * 100.0,
            bar(frac, 20),
            split
        );
    }
    println!("{:-<78}", "");
    let avg = fractions.iter().sum::<f64>() / fractions.len() as f64;
    println!(
        "{:<18} {:>32.1}%  (paper: ~45% average)",
        "AVERAGE",
        avg * 100.0
    );
    print_incident_summary(&results);

    abcd_bench::emit_cli_metrics(options);
}
