//! Experiment E3 — the analysis-effort numbers of §8: "The average number
//! of analysis steps (i.e., invocations of the recursive procedure prove)
//! was less than 10 per analyzed check" and "the time to analyze one bounds
//! check ranged from 0 to 35 milliseconds, and averaged around 4ms" (on a
//! 166 MHz PowerPC; we report microseconds on modern hardware — the shape
//! to check is *small and flat*, not the absolute value).
//!
//! Run with: `cargo run --release -p abcd-bench --bin table_effort`

use abcd::{ExhaustiveDistances, InequalityGraph, OptimizerOptions, Problem, Vertex};
use abcd_bench::{evaluate_all, print_incident_summary};
use abcd_ir::InstKind;

/// Relaxation steps an exhaustive single-source pass would spend: one pass
/// per distinct array-length source (plus the constant-0 source for lower
/// checks), per function — the batch alternative §5 rejects for JIT use.
fn exhaustive_steps(bench: &abcd_benchsuite::Benchmark) -> u64 {
    let mut module = bench.compile().unwrap();
    abcd_ssa::module_to_essa(&mut module).unwrap();
    let mut steps = 0;
    for (_, func) in module.functions() {
        let mut arrays = Vec::new();
        for b in func.blocks() {
            for &id in func.block(b).insts() {
                if let InstKind::BoundsCheck { array, .. } = func.inst(id).kind {
                    if !arrays.contains(&array) {
                        arrays.push(array);
                    }
                }
            }
        }
        if arrays.is_empty() {
            continue;
        }
        let upper = InequalityGraph::build(func, Problem::Upper, None);
        let lower = InequalityGraph::build(func, Problem::Lower, None);
        for a in &arrays {
            steps += ExhaustiveDistances::compute(&upper, Vertex::ArrayLen(*a)).steps;
        }
        steps += ExhaustiveDistances::compute(&lower, Vertex::Const(0)).steps;
    }
    steps
}

fn main() {
    let options = OptimizerOptions {
        validate: true,
        ..OptimizerOptions::default()
    };
    let results = evaluate_all(options);

    println!("Analysis effort per bounds check (demand-driven vs. exhaustive)");
    println!("{:-<92}", "");
    println!(
        "{:<18} {:>8} {:>9} {:>12} {:>10} {:>10} {:>12}",
        "benchmark", "checks", "steps", "steps/check", "+PRE", "µs/check", "exhaustive"
    );
    println!("{:-<92}", "");
    let mut total_steps = 0u64;
    let mut total_checks = 0usize;
    for r in &results {
        let checks = r.report.checks_analyzed();
        let steps = r.report.steps();
        let us = if checks > 0 {
            r.report.analysis_time().as_secs_f64() * 1e6 / checks as f64
        } else {
            0.0
        };
        total_steps += steps;
        total_checks += checks;
        let ex = exhaustive_steps(abcd_benchsuite::by_name(r.name).unwrap());
        println!(
            "{:<18} {:>8} {:>9} {:>12.2} {:>10} {:>10.2} {:>12}",
            r.name,
            checks,
            steps,
            r.report.steps_per_check(),
            r.report.pre_steps(),
            us,
            ex
        );
    }
    println!("{:-<92}", "");
    let avg = if total_checks > 0 {
        total_steps as f64 / total_checks as f64
    } else {
        0.0
    };
    println!("suite average: {avg:.2} steps/check   (paper: fewer than 10)");
    println!(
        "(the exhaustive column is the per-source batch cost the paper's §5\n\
         rejects for dynamic compilation; demand-driven work is per hot check)"
    );
    print_incident_summary(&results);

    abcd_bench::emit_cli_metrics(options);
}
