//! Experiment E2 — the static-redundancy numbers of §8: "In static terms,
//! the average number of checks that were found fully redundant was about
//! 31%. Only bytemark had a significant number of static checks that were
//! partially redundant (26%)."
//!
//! Run with: `cargo run --release -p abcd-bench --bin table_static`

use abcd::OptimizerOptions;
use abcd_bench::{evaluate_all, print_incident_summary};

fn main() {
    let options = OptimizerOptions {
        validate: true,
        ..OptimizerOptions::default()
    };
    let results = evaluate_all(options);

    println!("Static check classification (upper + lower checks)");
    println!("{:-<72}", "");
    println!(
        "{:<18} {:>7} {:>10} {:>8} {:>10} {:>8}",
        "benchmark", "static", "fully", "%", "partially", "%"
    );
    println!("{:-<72}", "");
    let mut fully_frac = Vec::new();
    for r in &results {
        let total = r.static_total();
        let fully = r.report.checks_removed_fully();
        let partial = r.report.checks_hoisted();
        fully_frac.push(r.static_fully_fraction());
        println!(
            "{:<18} {:>7} {:>10} {:>7.1}% {:>10} {:>7.1}%",
            r.name,
            total,
            fully,
            r.static_fully_fraction() * 100.0,
            partial,
            r.static_partial_fraction() * 100.0
        );
    }
    println!("{:-<72}", "");
    let avg = fully_frac.iter().sum::<f64>() / fully_frac.len() as f64;
    println!(
        "average fully redundant: {:.1}%   (paper: ~31%)",
        avg * 100.0
    );
    let bytemark = results.iter().find(|r| r.name == "bytemark").unwrap();
    println!(
        "bytemark partially redundant: {:.1}%   (paper: 26%)",
        bytemark.static_partial_fraction() * 100.0
    );
    print_incident_summary(&results);

    abcd_bench::emit_cli_metrics(options);
}
