//! Experiment A1 (ablation, beyond the paper's tables but grounded in its
//! §9 comparisons): ABCD vs. the exhaustive value-range baseline, and ABCD
//! with individual features disabled — PRE (§6), the GVN hook (§7.1), and
//! the pre-cleanup "basic set".
//!
//! Run with: `cargo run --release -p abcd-bench --bin table_ablation`

use abcd::OptimizerOptions;
use abcd_bench::{evaluate, evaluate_with_versioning, print_incident_summary};
use abcd_benchsuite::BENCHMARKS;
use abcd_vm::Vm;

/// Dynamic upper-removal fraction for the value-range baseline.
fn range_baseline(bench: &abcd_benchsuite::Benchmark) -> f64 {
    let baseline_module = bench.compile().unwrap();
    let mut vm = Vm::new(&baseline_module);
    vm.call_by_name("main", &[]).unwrap();
    let before = vm.stats().dynamic_upper_checks();

    let mut module = bench.compile().unwrap();
    abcd_ssa::module_to_essa(&mut module).unwrap();
    let ids: Vec<_> = module.functions().map(|(i, _)| i).collect();
    for id in ids {
        let f = module.function_mut(id);
        abcd_analysis::cleanup(f);
        abcd_analysis::eliminate_checks_by_range(f);
    }
    let mut vm = Vm::new(&module);
    vm.call_by_name("main", &[]).unwrap();
    let after = vm.stats().dynamic_upper_checks();
    if before == 0 {
        0.0
    } else {
        1.0 - after as f64 / before as f64
    }
}

fn main() {
    let full = OptimizerOptions {
        validate: true,
        ..OptimizerOptions::default()
    };
    let no_pre = OptimizerOptions { pre: false, ..full };
    let no_gvn = OptimizerOptions {
        gvn_hook: false,
        ..full
    };
    let no_cleanup = OptimizerOptions {
        cleanup: false,
        gvn_hook: false, // the hook needs the cleanup's value numbering
        ..full
    };
    let interproc = OptimizerOptions {
        interprocedural: true,
        ..full
    };

    println!("Ablation: % of dynamic upper-bound checks removed");
    println!("{:-<98}", "");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10} {:>9}",
        "benchmark", "ABCD", "-PRE", "-GVN", "-cleanup", "range-only", "+IPA", "+VER"
    );
    println!("{:-<98}", "");
    let mut sums = [0.0f64; 7];
    let mut full_results = Vec::with_capacity(BENCHMARKS.len());
    for b in BENCHMARKS {
        let rf = evaluate(b, full);
        let f = rf.upper_removed_fraction() * 100.0;
        full_results.push(rf);
        let p = evaluate(b, no_pre).upper_removed_fraction() * 100.0;
        let g = evaluate(b, no_gvn).upper_removed_fraction() * 100.0;
        let c = evaluate(b, no_cleanup).upper_removed_fraction() * 100.0;
        let r = range_baseline(b) * 100.0;
        let ipa = evaluate(b, interproc).upper_removed_fraction() * 100.0;
        let ver = evaluate_with_versioning(b, full).upper_removed_fraction() * 100.0;
        sums[0] += f;
        sums[1] += p;
        sums[2] += g;
        sums[3] += c;
        sums[4] += r;
        sums[5] += ipa;
        sums[6] += ver;
        println!(
            "{:<18} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.1}% {:>11.1}% {:>9.1}% {:>8.1}%",
            b.name, f, p, g, c, r, ipa, ver
        );
    }
    println!("{:-<98}", "");
    let n = BENCHMARKS.len() as f64;
    println!(
        "{:<18} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.1}% {:>11.1}% {:>9.1}% {:>8.1}%",
        "AVERAGE",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n,
        sums[6] / n
    );
    println!();
    println!("Notes: the range baseline removes fully redundant checks only (the");
    println!("paper's §9 positioning); -cleanup shows how much ABCD relies on the");
    println!("host compiler's basic optimizations to canonicalize constraints;");
    println!("+IPA enables the closed-world interprocedural parameter facts that");
    println!("address the paper's stated intraprocedural limitation; +VER adds");
    println!("guarded function versioning (the [MMS98]-style code duplication the");
    println!("paper also lists as missing), which is unconditionally sound.");
    print_incident_summary(&full_results);

    abcd_bench::emit_cli_metrics(full);
}
