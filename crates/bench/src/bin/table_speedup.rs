//! Experiment E4 — the run-time improvement of §8: "We measured run-time
//! speedup on the Symantec benchmarks. We observed about 10% improvement."
//! We measure model cycles (the VM's cost model charges an upper check a
//! length-load + compare, etc.), with and without the §7.2 unsigned-merge
//! of surviving pairs.
//!
//! Run with: `cargo run --release -p abcd-bench --bin table_speedup`

use abcd::OptimizerOptions;
use abcd_bench::{evaluate, evaluate_all, print_incident_summary};
use abcd_benchsuite::Group;

fn main() {
    let options = OptimizerOptions {
        validate: true,
        ..OptimizerOptions::default()
    };
    let results = evaluate_all(options);

    println!("Model-cycle speedup (optimized vs. baseline)");
    println!("{:-<74}", "");
    println!(
        "{:<18} {:>14} {:>14} {:>9} {:>12}",
        "benchmark", "base cycles", "opt cycles", "speedup", "+merge §7.2"
    );
    println!("{:-<74}", "");
    let mut symantec = Vec::new();
    for r in &results {
        // Re-evaluate with check merging for the last column.
        let merged = evaluate(
            abcd_benchsuite::by_name(r.name).unwrap(),
            OptimizerOptions {
                merge_checks: true,
                ..options
            },
        );
        let sp = r.speedup();
        if r.group == Group::Symantec {
            symantec.push(sp);
        }
        println!(
            "{:<18} {:>14} {:>14} {:>8.1}% {:>11.1}%",
            r.name,
            r.baseline.cycles,
            r.optimized.cycles,
            (sp - 1.0) * 100.0,
            (merged.speedup() - 1.0) * 100.0
        );
    }
    println!("{:-<74}", "");
    let avg = symantec.iter().sum::<f64>() / symantec.len() as f64;
    println!(
        "Symantec average: {:+.1}%   (paper: about 10% wall-clock)",
        (avg - 1.0) * 100.0
    );
    print_incident_summary(&results);

    abcd_bench::emit_cli_metrics(options);
}
