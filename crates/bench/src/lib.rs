//! Experiment harness reproducing every table and figure of the ABCD
//! paper's §8 (see `EXPERIMENTS.md` at the repository root for the index).
//!
//! The measurement protocol mirrors the paper's dynamic-compilation story:
//!
//! 1. compile a benchmark and run it once unoptimized — this *training run*
//!    yields the edge/site [`Profile`] a JIT would have collected;
//! 2. optimize with that profile (demand-driven hot-check ordering, PRE
//!    profitability);
//! 3. run the optimized module on the identical (deterministic) input and
//!    compare dynamic check counts and model cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abcd::{CheckOutcome, ModuleReport, Optimizer, OptimizerOptions};
use abcd_benchsuite::{Benchmark, Group};
use abcd_ir::FuncId;
use abcd_vm::{ExecStats, Profile, Vm};

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Benchmark group.
    pub group: Group,
    /// Dynamic stats of the unoptimized run.
    pub baseline: ExecStats,
    /// Dynamic stats of the optimized run.
    pub optimized: ExecStats,
    /// Static optimization report.
    pub report: ModuleReport,
    /// Dynamic upper-bound checks attributable to *locally* proven sites
    /// (Figure 6's local slice), measured against the training profile.
    pub dynamic_upper_removed_local: u64,
    /// Dynamic upper-bound checks attributable to globally proven or
    /// hoisted sites.
    pub dynamic_upper_removed_global: u64,
}

impl BenchResult {
    /// Fraction of dynamic upper-bound checks removed (Figure 6's y-axis).
    pub fn upper_removed_fraction(&self) -> f64 {
        let before = self.baseline.dynamic_upper_checks();
        if before == 0 {
            return 0.0;
        }
        let after = self.optimized.dynamic_upper_checks();
        1.0 - after as f64 / before as f64
    }

    /// Fraction of dynamic lower-bound checks removed (§7.2 dual).
    pub fn lower_removed_fraction(&self) -> f64 {
        let before = self.baseline.dynamic_lower_checks();
        if before == 0 {
            return 0.0;
        }
        1.0 - self.optimized.dynamic_lower_checks() as f64 / before as f64
    }

    /// Model-cycle speedup of the optimized run (e.g. `1.10` = 10% faster).
    pub fn speedup(&self) -> f64 {
        self.baseline.cycles as f64 / self.optimized.cycles.max(1) as f64
    }

    /// Static checks before optimization.
    pub fn static_total(&self) -> usize {
        self.report.checks_total()
    }

    /// Static fully-redundant fraction (§8 reports ≈31% on average).
    pub fn static_fully_fraction(&self) -> f64 {
        let t = self.static_total();
        if t == 0 {
            return 0.0;
        }
        self.report.checks_removed_fully() as f64 / t as f64
    }

    /// Static partially-redundant fraction (§8: 26% for bytemark).
    pub fn static_partial_fraction(&self) -> f64 {
        let t = self.static_total();
        if t == 0 {
            return 0.0;
        }
        self.report.checks_hoisted() as f64 / t as f64
    }
}

/// Runs the full protocol on one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails to compile or traps — the suite is
/// deterministic and trap-free by construction, so a panic here indicates
/// an optimizer bug.
pub fn evaluate(bench: &Benchmark, options: OptimizerOptions) -> BenchResult {
    evaluate_inner(bench, options, false)
}

/// Like [`evaluate`], but additionally applies function versioning (the
/// guarded fast/slow clones) after the regular pass.
pub fn evaluate_with_versioning(bench: &Benchmark, options: OptimizerOptions) -> BenchResult {
    evaluate_inner(bench, options, true)
}

fn evaluate_inner(bench: &Benchmark, options: OptimizerOptions, versioning: bool) -> BenchResult {
    // 1. Training run. The baseline has the host compiler's *basic*
    //    optimizations applied but every check intact — the paper's
    //    Jalapeño configuration ("copy propagation, … constant folding,
    //    … local common subexpression elimination …" with ABCD off) — so
    //    speedups measure check removal, not unrelated cleanup.
    let mut baseline_module = bench.compile().expect("benchmark compiles");
    let baseline_opts = OptimizerOptions {
        upper: false,
        lower: false,
        pre: false,
        merge_checks: false,
        ..options
    };
    Optimizer::with_options(baseline_opts).optimize_module(&mut baseline_module, None);
    let mut vm = Vm::new(&baseline_module);
    vm.call_by_name("main", &[]).expect("baseline run");
    let baseline = *vm.stats();
    let profile: Profile = vm.into_profile();

    // 2. Optimize with the profile.
    let mut optimized_module = bench.compile().expect("benchmark compiles");
    let report = Optimizer::with_options(options).optimize_module(&mut optimized_module, Some(&profile));
    if versioning {
        abcd::version_functions(&mut optimized_module, Some(&profile), 1);
    }

    // 3. Measured run.
    let mut vm = Vm::new(&optimized_module);
    vm.call_by_name("main", &[]).expect("optimized run");
    let optimized = *vm.stats();

    // Attribute removed dynamic upper checks to local/global proofs using
    // the training profile's per-site counts.
    let mut local = 0u64;
    let mut global = 0u64;
    for (i, freport) in report.functions.iter().enumerate() {
        let fid = FuncId::new(i);
        for (site, kind, outcome) in &freport.outcomes {
            if *kind != abcd_ir::CheckKind::Upper {
                continue;
            }
            let count = profile.site_count(fid, *site);
            match outcome {
                CheckOutcome::RemovedFully { local: true, .. } => local += count,
                CheckOutcome::RemovedFully { local: false, .. }
                | CheckOutcome::Hoisted { .. } => global += count,
                _ => {}
            }
        }
    }

    BenchResult {
        name: bench.name,
        group: bench.group,
        baseline,
        optimized,
        report,
        dynamic_upper_removed_local: local,
        dynamic_upper_removed_global: global,
    }
}

/// Evaluates the whole suite with the given options.
pub fn evaluate_all(options: OptimizerOptions) -> Vec<BenchResult> {
    abcd_benchsuite::BENCHMARKS
        .iter()
        .map(|b| evaluate(b, options))
        .collect()
}

/// Renders a simple ASCII bar of `frac` (0..=1) of width `width`.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_produces_consistent_numbers() {
        let b = abcd_benchsuite::by_name("array").unwrap();
        let r = evaluate(b, OptimizerOptions::default());
        assert!(r.baseline.dynamic_upper_checks() > 0);
        assert!(r.upper_removed_fraction() > 0.5, "{r:?}");
        assert!(r.speedup() >= 1.0);
        // Local + global attribution never exceeds the baseline count.
        assert!(
            r.dynamic_upper_removed_local + r.dynamic_upper_removed_global
                <= r.baseline.dynamic_upper_checks()
        );
    }

    #[test]
    fn bar_renders_proportionally() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(2.0, 4), "####");
    }
}
