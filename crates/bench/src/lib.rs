//! Experiment harness reproducing every table and figure of the ABCD
//! paper's §8 (see `EXPERIMENTS.md` at the repository root for the index).
//!
//! The measurement protocol mirrors the paper's dynamic-compilation story:
//!
//! 1. compile a benchmark and run it once unoptimized — this *training run*
//!    yields the edge/site [`Profile`] a JIT would have collected;
//! 2. optimize with that profile (demand-driven hot-check ordering, PRE
//!    profitability);
//! 3. run the optimized module on the identical (deterministic) input and
//!    compare dynamic check counts and model cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;

use abcd::{CheckOutcome, ModuleReport, Optimizer, OptimizerOptions};
use abcd_benchsuite::{Benchmark, Group};
use abcd_ir::FuncId;
use abcd_vm::{ExecStats, Profile, Vm};

/// Everything measured for one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Benchmark group.
    pub group: Group,
    /// Dynamic stats of the unoptimized run.
    pub baseline: ExecStats,
    /// Dynamic stats of the optimized run.
    pub optimized: ExecStats,
    /// Static optimization report.
    pub report: ModuleReport,
    /// Dynamic upper-bound checks attributable to *locally* proven sites
    /// (Figure 6's local slice), measured against the training profile.
    pub dynamic_upper_removed_local: u64,
    /// Dynamic upper-bound checks attributable to globally proven or
    /// hoisted sites.
    pub dynamic_upper_removed_global: u64,
}

impl BenchResult {
    /// Fraction of dynamic upper-bound checks removed (Figure 6's y-axis).
    pub fn upper_removed_fraction(&self) -> f64 {
        let before = self.baseline.dynamic_upper_checks();
        if before == 0 {
            return 0.0;
        }
        let after = self.optimized.dynamic_upper_checks();
        1.0 - after as f64 / before as f64
    }

    /// Fraction of dynamic lower-bound checks removed (§7.2 dual).
    pub fn lower_removed_fraction(&self) -> f64 {
        let before = self.baseline.dynamic_lower_checks();
        if before == 0 {
            return 0.0;
        }
        1.0 - self.optimized.dynamic_lower_checks() as f64 / before as f64
    }

    /// Model-cycle speedup of the optimized run (e.g. `1.10` = 10% faster).
    pub fn speedup(&self) -> f64 {
        self.baseline.cycles as f64 / self.optimized.cycles.max(1) as f64
    }

    /// Static checks before optimization.
    pub fn static_total(&self) -> usize {
        self.report.checks_total()
    }

    /// Static fully-redundant fraction (§8 reports ≈31% on average).
    pub fn static_fully_fraction(&self) -> f64 {
        let t = self.static_total();
        if t == 0 {
            return 0.0;
        }
        self.report.checks_removed_fully() as f64 / t as f64
    }

    /// Static partially-redundant fraction (§8: 26% for bytemark).
    pub fn static_partial_fraction(&self) -> f64 {
        let t = self.static_total();
        if t == 0 {
            return 0.0;
        }
        self.report.checks_hoisted() as f64 / t as f64
    }
}

/// Runs the full protocol on one benchmark.
///
/// # Panics
///
/// Panics if the benchmark fails to compile or traps — the suite is
/// deterministic and trap-free by construction, so a panic here indicates
/// an optimizer bug.
pub fn evaluate(bench: &Benchmark, options: OptimizerOptions) -> BenchResult {
    evaluate_inner(bench, options, false)
}

/// Like [`evaluate`], but additionally applies function versioning (the
/// guarded fast/slow clones) after the regular pass.
pub fn evaluate_with_versioning(bench: &Benchmark, options: OptimizerOptions) -> BenchResult {
    evaluate_inner(bench, options, true)
}

fn evaluate_inner(bench: &Benchmark, options: OptimizerOptions, versioning: bool) -> BenchResult {
    // 1. Training run. The baseline has the host compiler's *basic*
    //    optimizations applied but every check intact — the paper's
    //    Jalapeño configuration ("copy propagation, … constant folding,
    //    … local common subexpression elimination …" with ABCD off) — so
    //    speedups measure check removal, not unrelated cleanup.
    let mut baseline_module = bench.compile().expect("benchmark compiles");
    let baseline_opts = OptimizerOptions {
        upper: false,
        lower: false,
        pre: false,
        merge_checks: false,
        ..options
    };
    Optimizer::with_options(baseline_opts).optimize_module(&mut baseline_module, None);
    let mut vm = Vm::new(&baseline_module);
    vm.call_by_name("main", &[]).expect("baseline run");
    let baseline = *vm.stats();
    let profile: Profile = vm.into_profile();

    // 2. Optimize with the profile.
    let mut optimized_module = bench.compile().expect("benchmark compiles");
    let report =
        Optimizer::with_options(options).optimize_module(&mut optimized_module, Some(&profile));
    if versioning {
        abcd::version_functions(&mut optimized_module, Some(&profile), 1);
    }

    // 3. Measured run.
    let mut vm = Vm::new(&optimized_module);
    vm.call_by_name("main", &[]).expect("optimized run");
    let optimized = *vm.stats();

    // Attribute removed dynamic upper checks to local/global proofs using
    // the training profile's per-site counts.
    let mut local = 0u64;
    let mut global = 0u64;
    for (i, freport) in report.functions.iter().enumerate() {
        let fid = FuncId::new(i);
        for (site, kind, outcome) in &freport.outcomes {
            if *kind != abcd_ir::CheckKind::Upper {
                continue;
            }
            let count = profile.site_count(fid, *site);
            match outcome {
                CheckOutcome::RemovedFully { local: true, .. } => local += count,
                CheckOutcome::RemovedFully { local: false, .. } | CheckOutcome::Hoisted { .. } => {
                    global += count
                }
                _ => {}
            }
        }
    }

    BenchResult {
        name: bench.name,
        group: bench.group,
        baseline,
        optimized,
        report,
        dynamic_upper_removed_local: local,
        dynamic_upper_removed_global: global,
    }
}

/// Evaluates the whole suite with the given options.
pub fn evaluate_all(options: OptimizerOptions) -> Vec<BenchResult> {
    abcd_benchsuite::BENCHMARKS
        .iter()
        .map(|b| evaluate(b, options))
        .collect()
}

/// Number of kernel functions in the [`stress_module`] used for the
/// wall-clock speedup measurement.
pub const STRESS_FUNCTIONS: usize = 24;

/// A synthetic module of [`STRESS_FUNCTIONS`] analysis-heavy kernels.
///
/// The benchsuite modules are too small for a parallel-vs-sequential
/// wall-clock comparison: optimizing a whole program takes well under a
/// millisecond in release mode, so worker startup dominates. This module
/// gives the pool enough per-function work to amortize it.
pub fn stress_module() -> abcd_ir::Module {
    use std::fmt::Write as _;
    let mut src = String::new();
    for i in 0..STRESS_FUNCTIONS {
        let _ = write!(
            src,
            "fn k{i}(a: int[], b: int[]) -> int {{
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) {{
                    for (let j: int = 0; j < b.length; j = j + 1) {{
                        if (i + j < a.length) {{ s = s + a[i + j] - b[j]; }}
                        if (j <= i) {{ s = s + b[i - j]; }}
                    }}
                    let k: int = a.length - 1;
                    while (k >= i) {{
                        s = s + a[k] - a[i];
                        k = k - 1;
                    }}
                }}
                return s;
            }}
            "
        );
    }
    src.push_str("fn main() -> int { return 0; }\n");
    abcd_frontend::compile(&src).expect("stress module compiles")
}

/// Measures the optimize phase of `benches` at one worker and at
/// `threads` workers and renders the comparison — plus each benchmark's
/// `abcd-metrics/6` object from the parallel run — as one JSON document
/// (schema `abcd-bench-metrics/4`).
///
/// Version 3 adds a `"cache"` object comparing a cold run against a warm
/// rerun through one shared [`abcd::AnalysisCache`]: the warm wall, the
/// hit/miss/store counters, and `warm_speedup`. The warm rerun reuses the
/// cold run's cache, so every function should replay (`hits > 0`,
/// `warm_misses == 0` on a healthy run).
///
/// The document leads with the suite-wide fail-open counters (`incidents`,
/// `degraded_incidents`, `checks_validated`, `checks_reinstated`) so a
/// metrics trajectory records healthy zero-incident runs explicitly rather
/// than by omission.
///
/// The headline `speedup` is measured on [`stress_module`] (best of three
/// runs per configuration); the tiny real-suite walls are reported
/// alongside as `suite_*`. Training runs are shared between the two
/// configurations so the timed region is exactly
/// `Optimizer::optimize_module`.
pub fn metrics_json_for(
    benches: &[Benchmark],
    options: OptimizerOptions,
    threads: usize,
) -> String {
    use std::fmt::Write as _;
    use std::time::{Duration, Instant};

    let threads = threads.max(2);

    let stress_wall = |workers: usize| -> Duration {
        (0..3)
            .map(|_| {
                let mut module = stress_module();
                let started = Instant::now();
                Optimizer::with_options(options)
                    .with_threads(workers)
                    .optimize_module(&mut module, None);
                started.elapsed()
            })
            .min()
            .unwrap()
    };
    let stress_seq = stress_wall(1);
    let stress_par = stress_wall(threads);
    let trained: Vec<(&Benchmark, Profile)> = benches
        .iter()
        .map(|b| {
            let m = b.compile().expect("benchmark compiles");
            let mut vm = Vm::new(&m);
            vm.call_by_name("main", &[]).expect("training run");
            (b, vm.into_profile())
        })
        .collect();

    let optimize_suite = |workers: usize| -> (Duration, Vec<(Duration, ModuleReport)>) {
        let mut total = Duration::ZERO;
        let mut per_bench = Vec::with_capacity(trained.len());
        for (bench, profile) in &trained {
            let mut module = bench.compile().expect("benchmark compiles");
            let started = Instant::now();
            let report = Optimizer::with_options(options)
                .with_threads(workers)
                .optimize_module(&mut module, Some(profile));
            let wall = started.elapsed();
            total += wall;
            per_bench.push((wall, report));
        }
        (total, per_bench)
    };

    let (suite_seq, _) = optimize_suite(1);
    let (suite_par, par_reports) = optimize_suite(threads);

    let seq_us = stress_seq.as_micros();
    let par_us = stress_par.as_micros();
    let speedup = seq_us as f64 / (par_us.max(1)) as f64;
    let suite_seq_us = suite_seq.as_micros();
    let suite_par_us = suite_par.as_micros();
    let suite_speedup = suite_seq_us as f64 / (suite_par_us.max(1)) as f64;

    // With fewer host CPUs than workers a speedup below 1.0 is expected
    // (the pool can only tie on one core); record the host parallelism so
    // the walls are interpretable.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm-vs-cold: run the suite twice through one shared cache. The
    // first pass misses and stores; the second should replay every
    // function from the cache (incremental-recompilation scenario).
    let cache = std::sync::Arc::new(abcd::AnalysisCache::in_memory(
        abcd::cache::DEFAULT_CACHE_BYTES,
    ));
    let cached_suite = || -> (Duration, usize) {
        let mut total = Duration::ZERO;
        let mut from_cache = 0;
        for (bench, profile) in &trained {
            let mut module = bench.compile().expect("benchmark compiles");
            let started = Instant::now();
            let report = Optimizer::with_options(options)
                .with_cache(std::sync::Arc::clone(&cache))
                .optimize_module(&mut module, Some(profile));
            total += started.elapsed();
            from_cache += report.functions_from_cache();
        }
        (total, from_cache)
    };
    let (cold_wall, _) = cached_suite();
    let cold_stats = cache.stats();
    let (warm_wall, warm_from_cache) = cached_suite();
    let warm_stats = cache.stats();
    let cold_us = cold_wall.as_micros();
    let warm_us = warm_wall.as_micros();
    let warm_speedup = cold_us as f64 / (warm_us.max(1)) as f64;

    let incidents: usize = par_reports.iter().map(|(_, r)| r.incident_count()).sum();
    let degraded: usize = par_reports
        .iter()
        .map(|(_, r)| r.degraded_incident_count())
        .sum();
    let validated: usize = par_reports.iter().map(|(_, r)| r.checks_validated()).sum();
    let reinstated: usize = par_reports.iter().map(|(_, r)| r.checks_reinstated()).sum();

    let mut out = String::from("{\"schema\":\"abcd-bench-metrics/4\"");
    let _ = write!(
        out,
        ",\"incidents\":{incidents},\"degraded_incidents\":{degraded},\
         \"checks_validated\":{validated},\"checks_reinstated\":{reinstated}"
    );
    let _ = write!(
        out,
        ",\"parallel\":{{\"threads\":{threads},\"host_cpus\":{host_cpus},\
         \"stress_functions\":{STRESS_FUNCTIONS},\
         \"sequential_wall_us\":{seq_us},\"parallel_wall_us\":{par_us},\
         \"speedup\":\"{speedup:.4}\",\
         \"suite_sequential_wall_us\":{suite_seq_us},\
         \"suite_parallel_wall_us\":{suite_par_us},\
         \"suite_speedup\":\"{suite_speedup:.4}\"}}"
    );
    let _ = write!(
        out,
        ",\"cache\":{{\"cold_wall_us\":{cold_us},\"warm_wall_us\":{warm_us},\
         \"warm_speedup\":\"{warm_speedup:.4}\",\
         \"cold_misses\":{},\"stores\":{},\"warm_hits\":{},\"warm_misses\":{},\
         \"functions_from_cache\":{warm_from_cache}}}",
        cold_stats.misses,
        cold_stats.stores,
        warm_stats.hits - cold_stats.hits,
        warm_stats.misses - cold_stats.misses,
    );
    out.push_str(",\"benchmarks\":[");
    for (i, ((bench, _), (wall, report))) in trained.iter().zip(&par_reports).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let metrics = abcd::module_metrics_json(report, abcd::RunInfo::new(threads, *wall));
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"metrics\":{metrics}}}",
            abcd::json_escape(bench.name)
        );
    }
    out.push_str("]}");
    out
}

/// [`metrics_json_for`] over the whole benchmark suite.
pub fn suite_metrics_json(options: OptimizerOptions, threads: usize) -> String {
    metrics_json_for(abcd_benchsuite::BENCHMARKS, options, threads)
}

/// Prints the fail-open summary line the experiment binaries append to
/// their tables: total incidents (zero on a healthy run — printed anyway so
/// logged trajectories record the clean run explicitly) and the
/// translation-validation counters.
pub fn print_incident_summary(results: &[BenchResult]) {
    let incidents: usize = results.iter().map(|r| r.report.incident_count()).sum();
    let degraded: usize = results
        .iter()
        .map(|r| r.report.degraded_incident_count())
        .sum();
    let validated: usize = results.iter().map(|r| r.report.checks_validated()).sum();
    let reinstated: usize = results.iter().map(|r| r.report.checks_reinstated()).sum();
    println!(
        "incidents: {incidents} ({degraded} degraded); validation: {validated} re-proven, \
         {reinstated} reinstated"
    );
    for r in results {
        for incident in r.report.incidents() {
            println!("  {}: {incident}", r.name);
        }
    }
}

/// Shared CLI tail of the experiment binaries: when `--metrics` or
/// `--metrics-out FILE` was passed, re-optimizes the suite at one worker
/// and at `--jobs N` workers (default and minimum 2) and emits the
/// `abcd-bench-metrics/4` comparison JSON after the table.
pub fn emit_cli_metrics(options: OptimizerOptions) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let to_file = value_of("--metrics-out").cloned();
    let print = args.iter().any(|a| a == "--metrics");
    if !print && to_file.is_none() {
        return;
    }
    let threads = value_of("--jobs").and_then(|v| v.parse().ok()).unwrap_or(2);
    let json = suite_metrics_json(options, threads);
    if let Some(path) = &to_file {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("metrics: {path}: {e}");
        }
    }
    if print {
        println!("{json}");
    }
}

/// Renders a simple ASCII bar of `frac` (0..=1) of width `width`.
pub fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_produces_consistent_numbers() {
        let b = abcd_benchsuite::by_name("array").unwrap();
        let r = evaluate(b, OptimizerOptions::default());
        assert!(r.baseline.dynamic_upper_checks() > 0);
        assert!(r.upper_removed_fraction() > 0.5, "{r:?}");
        assert!(r.speedup() >= 1.0);
        // Local + global attribution never exceeds the baseline count.
        assert!(
            r.dynamic_upper_removed_local + r.dynamic_upper_removed_global
                <= r.baseline.dynamic_upper_checks()
        );
    }

    #[test]
    fn metrics_json_compares_sequential_and_parallel_walls() {
        let json = metrics_json_for(
            &abcd_benchsuite::BENCHMARKS[..2],
            OptimizerOptions::default(),
            2,
        );
        assert!(
            json.starts_with("{\"schema\":\"abcd-bench-metrics/4\""),
            "{json}"
        );
        // Zero-incident runs are recorded explicitly, not by omission.
        assert!(
            json.contains("\"incidents\":0,\"degraded_incidents\":0"),
            "{json}"
        );
        assert!(json.contains("\"checks_validated\":"), "{json}");
        assert!(json.contains("\"checks_reinstated\":0"), "{json}");
        assert!(json.contains("\"parallel\":{\"threads\":2"), "{json}");
        assert!(json.contains("\"sequential_wall_us\":"), "{json}");
        assert!(json.contains("\"parallel_wall_us\":"), "{json}");
        assert!(json.contains("\"speedup\":\""), "{json}");
        // Each of the two benchmarks embeds a full abcd-metrics/6 object.
        assert_eq!(
            json.matches("\"metrics\":{\"schema\":\"abcd-metrics/6\"")
                .count(),
            2,
            "{json}"
        );
        // The warm rerun replays every function the cold run stored.
        assert!(json.contains("\"cache\":{\"cold_wall_us\":"), "{json}");
        assert!(json.contains("\"warm_misses\":0"), "{json}");
        assert!(!json.contains("\"functions_from_cache\":0}"), "{json}");
    }

    #[test]
    fn bar_renders_proportionally() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(1.0, 4), "####");
        assert_eq!(bar(2.0, 4), "####");
    }
}
